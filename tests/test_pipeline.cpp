#include <gtest/gtest.h>

#include <stdexcept>

#include "core/streaming_scheduler.hpp"
#include "paper_examples.hpp"
#include "pipeline/passes.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/schedule_cache.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

MachineConfig machine_with(std::int64_t pes) {
  MachineConfig machine;
  machine.num_pes = pes;
  return machine;
}

// ---------------------------------------------------------------- registry

TEST(Registry, BuiltinsAreRegistered) {
  auto& registry = SchedulerRegistry::instance();
  for (const char* name :
       {"streaming-lts", "streaming-rlx", "streaming-work", "list", "heft", "csdf"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    const auto scheduler = registry.create(name);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_EQ(scheduler->name(), name);
    EXPECT_FALSE(scheduler->description().empty());
  }
}

TEST(Registry, NamesAreSortedAndListEveryBuiltin) {
  const auto names = SchedulerRegistry::instance().names();
  EXPECT_GE(names.size(), 6u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, UnknownNameThrowsListingKnownSchedulers) {
  try {
    (void)SchedulerRegistry::instance().create("no-such-scheduler");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no-such-scheduler"), std::string::npos);
    EXPECT_NE(message.find("streaming-rlx"), std::string::npos);
  }
}

TEST(Registry, DuplicateRegistrationThrows) {
  auto& registry = SchedulerRegistry::instance();
  EXPECT_THROW(registry.add("streaming-rlx",
                            []() -> std::unique_ptr<Scheduler> {
                              throw std::logic_error("factory must not run");
                            }),
               std::invalid_argument);
}

TEST(Registry, CustomSchedulerRegistersAndUnregisters) {
  auto& registry = SchedulerRegistry::instance();
  registry.add("test-only-rlx",
               [&registry] { return registry.create("streaming-rlx"); });
  ASSERT_TRUE(registry.contains("test-only-rlx"));
  const TaskGraph g = testing::figure8_graph();
  const ScheduleResult r = schedule_by_name("test-only-rlx", g, machine_with(8));
  EXPECT_GT(r.makespan, 0);
  registry.remove("test-only-rlx");
  EXPECT_FALSE(registry.contains("test-only-rlx"));
}

// ---------------------------------------------------- input preconditions

TEST(SchedulerPreconditions, NonPositivePeCountThrows) {
  const TaskGraph g = testing::figure8_graph();
  EXPECT_THROW((void)schedule_by_name("streaming-rlx", g, machine_with(0)),
               std::invalid_argument);
  EXPECT_THROW((void)schedule_by_name("streaming-rlx", g, machine_with(-4)),
               std::invalid_argument);
  EXPECT_THROW((void)schedule_streaming_graph(g, 0, PartitionVariant::kRLX),
               std::invalid_argument);
}

TEST(SchedulerPreconditions, PeSpeedMustMatchPeCountAndBePositive) {
  const TaskGraph g = testing::figure8_graph();
  MachineConfig machine = machine_with(8);
  machine.pe_speed = {1.0, 1.0};  // size mismatch with num_pes
  EXPECT_THROW((void)schedule_by_name("heft", g, machine), std::invalid_argument);
  machine.pe_speed = std::vector<double>(8, 1.0);
  machine.pe_speed[3] = 0.0;
  EXPECT_THROW((void)schedule_by_name("heft", g, machine), std::invalid_argument);
  machine.pe_speed[3] = 2.0;
  EXPECT_GT(schedule_by_name("heft", g, machine).makespan, 0);
}

TEST(SchedulerPreconditions, InvalidGraphThrowsWithDiagnostics) {
  TaskGraph g;
  const NodeId a = g.add_source(8, "a");
  const NodeId b = g.add_compute("b");
  g.add_edge(a, b, 4);  // mismatched volume: source declares 8, edge carries 4
  ASSERT_FALSE(g.validate().empty());
  try {
    (void)schedule_streaming_graph(g, 4, PartitionVariant::kLTS);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("canonical"), std::string::npos);
  }
}

// ------------------------------------------------------------- equivalence

class PipelineEquivalence : public ::testing::TestWithParam<PartitionVariant> {};

TEST_P(PipelineEquivalence, MatchesDirectCallsOnPaperExamples) {
  const PartitionVariant variant = GetParam();
  const char* name = variant == PartitionVariant::kLTS ? "streaming-lts" : "streaming-rlx";
  for (const TaskGraph& g :
       {testing::figure8_graph(), testing::figure9_graph1(), testing::figure9_graph2(),
        testing::figure6_graph(), testing::buffer_split_example()}) {
    // Direct calls into the stage functions, exactly as pre-pipeline code did.
    const StreamingSchedule direct =
        schedule_streaming(g, partition_spatial_blocks(g, 8, variant));
    const BufferPlan direct_buffers = compute_buffer_plan(g, direct);

    const ScheduleResult piped = schedule_by_name(name, g, machine_with(8));
    ASSERT_TRUE(piped.is_streaming());
    EXPECT_EQ(piped.makespan, direct.makespan);
    EXPECT_EQ(piped.streaming->block_start, direct.block_start);
    EXPECT_EQ(piped.buffers->total_capacity, direct_buffers.total_capacity);
    for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
      EXPECT_EQ(piped.streaming->at(v).start, direct.at(v).start) << "node " << v;
      EXPECT_EQ(piped.streaming->at(v).last_out, direct.at(v).last_out) << "node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, PipelineEquivalence,
                         ::testing::Values(PartitionVariant::kLTS, PartitionVariant::kRLX),
                         [](const auto& info) {
                           return info.param == PartitionVariant::kLTS ? "lts" : "rlx";
                         });

TEST(PipelineEquivalence, WrapperMatchesRegistry) {
  const TaskGraph g = make_fft(8, 3);
  const StreamingSchedulerResult wrapper = schedule_streaming_graph(g, 16, PartitionVariant::kRLX);
  const ScheduleResult piped = schedule_by_name("streaming-rlx", g, machine_with(16));
  EXPECT_EQ(wrapper.schedule.makespan, piped.makespan);
  EXPECT_EQ(wrapper.buffers.total_capacity, piped.buffers->total_capacity);
}

// ------------------------------------------------------------------ passes

TEST(Pipeline, RecordsTimingsAndRunsValidationHooks) {
  const TaskGraph g = testing::figure9_graph1();
  ScheduleContext ctx;
  ctx.graph = &g;
  ctx.machine = machine_with(8);

  Pipeline pipeline;
  pipeline.emplace<PartitionPass>(PartitionStrategy::kRLX)
      .emplace<StreamingSchedulePass>()
      .emplace<BufferSizingPass>()
      .emplace<MetricsPass>();
  EXPECT_EQ(pipeline.pass_count(), 4u);
  pipeline.run(ctx);

  ASSERT_EQ(ctx.timings.size(), 4u);
  EXPECT_EQ(ctx.timings[0].pass, "partition");
  EXPECT_EQ(ctx.timings[1].pass, "streaming-schedule");
  ASSERT_TRUE(ctx.metrics.has_value());
  EXPECT_GT(ctx.metrics->speedup, 0.0);
  EXPECT_GT(ctx.makespan, 0);
}

TEST(Pipeline, MisassembledPipelineFailsLoudly) {
  const TaskGraph g = testing::figure8_graph();
  ScheduleContext ctx;
  ctx.graph = &g;
  ctx.machine = machine_with(8);
  Pipeline pipeline;
  pipeline.emplace<StreamingSchedulePass>();  // partition pass missing
  EXPECT_THROW(pipeline.run(ctx), std::logic_error);
}

TEST(Pipeline, StreamingWorkSchedulerRunsAlgorithm2) {
  const TaskGraph g = make_chain(8, 1);
  const ScheduleResult r = schedule_by_name("streaming-work", g, machine_with(4));
  ASSERT_TRUE(r.is_streaming());
  EXPECT_GT(r.makespan, 0);
  EXPECT_EQ(r.streaming->timing.size(), g.node_count());
}

TEST(Pipeline, BaselineSchedulersProduceListSchedules) {
  const TaskGraph g = make_fft(8, 2);
  for (const char* name : {"list", "heft"}) {
    const ScheduleResult r = schedule_by_name(name, g, machine_with(16));
    ASSERT_TRUE(r.list.has_value()) << name;
    EXPECT_FALSE(r.is_streaming()) << name;
    EXPECT_GT(r.makespan, 0) << name;
    EXPECT_GT(r.metrics.speedup, 0.0) << name;
  }
}

TEST(Pipeline, CsdfSchedulerAnalyzesBufferFreeGraphs) {
  const TaskGraph g = testing::figure8_graph();
  const ScheduleResult r = schedule_by_name("csdf", g, machine_with(8));
  ASSERT_TRUE(r.csdf.has_value());
  EXPECT_GT(r.makespan, 0);
  EXPECT_FALSE(r.csdf->deadlocked);
}

TEST(Pipeline, SimulationPassValidatesSchedules) {
  const TaskGraph g = testing::figure9_graph1();
  ScheduleContext ctx;
  ctx.graph = &g;
  ctx.machine = machine_with(5);

  Pipeline pipeline;
  pipeline.emplace<PartitionPass>(PartitionStrategy::kRLX)
      .emplace<StreamingSchedulePass>()
      .emplace<BufferSizingPass>()
      .emplace<SimulationPass>();
  pipeline.run(ctx);

  ASSERT_TRUE(ctx.sim.has_value());
  EXPECT_FALSE(ctx.sim->deadlocked);
  EXPECT_EQ(ctx.sim->engine_used, SimEngine::kBulkAdvance);
  EXPECT_EQ(ctx.sim->makespan, ctx.streaming->makespan);
}

TEST(Pipeline, SimulationPassRejectsStarvedBuffers) {
  const TaskGraph g = testing::figure9_graph1();
  ScheduleContext ctx;
  ctx.graph = &g;
  ctx.machine = machine_with(5);

  Pipeline pipeline;
  pipeline.emplace<PartitionPass>(PartitionStrategy::kRLX)
      .emplace<StreamingSchedulePass>()
      .emplace<BufferSizingPass>();
  pipeline.run(ctx);
  for (ChannelPlan& c : ctx.buffers->channels) c.capacity = 1;  // starve the FIFOs

  Pipeline sim_only;
  sim_only.emplace<SimulationPass>();
  EXPECT_THROW(sim_only.run(ctx), std::runtime_error);
  ASSERT_TRUE(ctx.sim.has_value());
  EXPECT_TRUE(ctx.sim->deadlocked);
}

TEST(Pipeline, SimulationPassWithoutBuffersFailsLoudly) {
  const TaskGraph g = testing::figure8_graph();
  ScheduleContext ctx;
  ctx.graph = &g;
  ctx.machine = machine_with(8);
  Pipeline pipeline;
  pipeline.emplace<PartitionPass>(PartitionStrategy::kRLX)
      .emplace<StreamingSchedulePass>()
      .emplace<SimulationPass>();  // buffer-sizing pass missing
  EXPECT_THROW(pipeline.run(ctx), std::logic_error);
}

TEST(Pipeline, PlacementPassRunsWhenRequested) {
  const TaskGraph g = make_fft(8, 1);
  MachineConfig machine = machine_with(16);
  machine.place_on_mesh = true;
  const ScheduleResult r = schedule_by_name("streaming-rlx", g, machine);
  ASSERT_TRUE(r.placement.has_value());
  EXPECT_EQ(r.placement->mesh_pe.size(), g.node_count());
}

// ------------------------------------------------------------------- cache

TEST(ScheduleCache, HitReturnsIdenticalResult) {
  ScheduleCache cache;
  const TaskGraph g = make_cholesky(5, 1);
  const MachineConfig machine = machine_with(8);

  const auto first = cache.get_or_schedule(g, "streaming-rlx", machine);
  const auto second = cache.get_or_schedule(g, "streaming-rlx", machine);
  EXPECT_EQ(first.get(), second.get()) << "hit must return the cached object";
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);

  const ScheduleResult direct = schedule_by_name("streaming-rlx", g, machine);
  EXPECT_EQ(first->makespan, direct.makespan);
  EXPECT_EQ(first->buffers->total_capacity, direct.buffers->total_capacity);
}

TEST(ScheduleCache, DistinctSchedulerOrConfigMisses) {
  ScheduleCache cache;
  const TaskGraph g = make_fft(8, 1);
  (void)cache.get_or_schedule(g, "streaming-rlx", machine_with(8));
  (void)cache.get_or_schedule(g, "streaming-lts", machine_with(8));
  (void)cache.get_or_schedule(g, "streaming-rlx", machine_with(16));
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(ScheduleCache, MutatedGraphRecomputes) {
  ScheduleCache cache;
  TaskGraph g = testing::figure8_graph();
  (void)cache.get_or_schedule(g, "streaming-rlx", machine_with(8));

  // Same topology, one volume changed: must be a miss, not a stale hit.
  TaskGraph mutated;
  const NodeId n0 = mutated.add_source(16, "t0");
  const NodeId n1 = mutated.add_compute("t1");
  const NodeId n2 = mutated.add_compute("t2");
  const NodeId n3 = mutated.add_compute("t3");
  const NodeId n4 = mutated.add_compute("t4");
  mutated.add_edge(n0, n1, 16);
  mutated.add_edge(n1, n2, 4);
  mutated.add_edge(n0, n3, 16);
  mutated.add_edge(n3, n4, 32);
  mutated.declare_output(n2, 4);
  mutated.declare_output(n4, 16);  // figure8 declares 8 here
  ASSERT_TRUE(mutated.validate().empty());

  (void)cache.get_or_schedule(mutated, "streaming-rlx", machine_with(8));
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ScheduleCache, RenamedNodesStillHit) {
  // Names never influence schedules, so the canonical fingerprint ignores
  // them and a renamed copy of the same graph hits the cache.
  ScheduleCache cache;
  (void)cache.get_or_schedule(testing::figure8_graph(), "streaming-rlx", machine_with(8));

  TaskGraph renamed;
  const NodeId n0 = renamed.add_source(16, "renamed0");
  const NodeId n1 = renamed.add_compute("renamed1");
  const NodeId n2 = renamed.add_compute("renamed2");
  const NodeId n3 = renamed.add_compute("renamed3");
  const NodeId n4 = renamed.add_compute("renamed4");
  renamed.add_edge(n0, n1, 16);
  renamed.add_edge(n1, n2, 4);
  renamed.add_edge(n0, n3, 16);
  renamed.add_edge(n3, n4, 32);
  renamed.declare_output(n2, 4);
  renamed.declare_output(n4, 8);

  (void)cache.get_or_schedule(renamed, "streaming-rlx", machine_with(8));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ScheduleCache, ClearResetsEntriesAndStats) {
  ScheduleCache cache;
  (void)cache.get_or_schedule(testing::figure8_graph(), "streaming-rlx", machine_with(8));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ScheduleCacheKey, FingerprintDiffersForDifferentGraphs) {
  const std::string a = canonical_cache_key(testing::figure8_graph(), "streaming-rlx",
                                            machine_with(8));
  const std::string b = canonical_cache_key(testing::figure9_graph1(), "streaming-rlx",
                                            machine_with(8));
  EXPECT_NE(a, b);
  EXPECT_NE(fnv1a64(a), fnv1a64(b));
}

}  // namespace
}  // namespace sts
