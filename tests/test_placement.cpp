#include "noc/placement.hpp"

#include <gtest/gtest.h>

#include "core/streaming_scheduler.hpp"
#include "noc/mesh.hpp"
#include "paper_examples.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

TEST(Mesh, CoordinateRoundTrip) {
  const Mesh mesh(3, 4);
  EXPECT_EQ(mesh.size(), 12);
  for (std::int64_t pe = 0; pe < mesh.size(); ++pe) {
    EXPECT_EQ(mesh.pe_of(mesh.coord_of(pe)), pe);
  }
  EXPECT_EQ(mesh.coord_of(5).x, 1);
  EXPECT_EQ(mesh.coord_of(5).y, 1);
}

TEST(Mesh, ManhattanDistance) {
  const Mesh mesh(4, 4);
  EXPECT_EQ(mesh.distance(0, 0), 0);
  EXPECT_EQ(mesh.distance(0, 3), 3);
  EXPECT_EQ(mesh.distance(0, 15), 6);
  EXPECT_EQ(mesh.distance(5, 10), 2);
}

TEST(Mesh, ForPesCoversRequest) {
  for (const std::int64_t pes : {1, 2, 5, 16, 17, 100}) {
    const Mesh mesh = Mesh::for_pes(pes);
    EXPECT_GE(mesh.size(), pes) << pes;
    EXPECT_LE(mesh.size(), 2 * pes + 2) << pes;  // near-square, no blowup
  }
  EXPECT_THROW((void)Mesh::for_pes(0), std::invalid_argument);
}

TEST(Mesh, LinkIdsAreUniqueAndInRange) {
  const Mesh mesh(3, 3);
  std::vector<bool> seen(static_cast<std::size_t>(mesh.link_count()), false);
  for (std::int64_t pe = 0; pe < mesh.size(); ++pe) {
    const MeshCoord c = mesh.coord_of(pe);
    const MeshCoord steps[] = {{c.x + 1, c.y}, {c.x - 1, c.y}, {c.x, c.y + 1}, {c.x, c.y - 1}};
    for (const MeshCoord& to : steps) {
      if (to.x < 0 || to.x >= mesh.cols() || to.y < 0 || to.y >= mesh.rows()) continue;
      const std::int64_t id = mesh.link_id(c, to);
      ASSERT_GE(id, 0);
      ASSERT_LT(id, mesh.link_count());
      EXPECT_FALSE(seen[static_cast<std::size_t>(id)]) << "duplicate link id " << id;
      seen[static_cast<std::size_t>(id)] = true;
    }
  }
  for (const bool s : seen) EXPECT_TRUE(s);  // every link reachable
  EXPECT_THROW((void)mesh.link_id({0, 0}, {2, 0}), std::invalid_argument);
}

TEST(Placement, IdentityPlacesEveryPeTask) {
  const TaskGraph g = testing::figure9_graph1();
  const auto r = schedule_streaming_graph(g, 5, PartitionVariant::kRLX);
  const Mesh mesh = Mesh::for_pes(5);
  const Placement placement = place_identity(g, r.schedule, mesh);
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    if (g.occupies_pe(v)) {
      EXPECT_GE(placement.mesh_pe[static_cast<std::size_t>(v)], 0) << v;
    } else {
      EXPECT_EQ(placement.mesh_pe[static_cast<std::size_t>(v)], -1) << v;
    }
  }
  EXPECT_EQ(placement.metrics.streaming_edges, 5);
  EXPECT_GT(placement.metrics.weighted_hops, 0);
}

TEST(Placement, GreedyNeverWorseThanIdentityOnWeightedHops) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const TaskGraph g = make_fft(16, seed);
    const auto r = schedule_streaming_graph(g, 32, PartitionVariant::kRLX);
    const Mesh mesh = Mesh::for_pes(32);
    const Placement identity = place_identity(g, r.schedule, mesh);
    const Placement greedy = place_greedy(g, r.schedule, mesh);
    EXPECT_LE(greedy.metrics.weighted_hops, identity.metrics.weighted_hops) << "seed " << seed;
  }
}

TEST(Placement, DistinctPesWithinBlock) {
  const TaskGraph g = make_gaussian_elimination(8, 3);
  const auto r = schedule_streaming_graph(g, 16, PartitionVariant::kRLX);
  const Mesh mesh = Mesh::for_pes(16);
  const Placement placement = place_greedy(g, r.schedule, mesh);
  for (const auto& block : r.schedule.partition.blocks) {
    std::set<std::int64_t> used;
    for (const NodeId v : block) {
      EXPECT_TRUE(used.insert(placement.mesh_pe[static_cast<std::size_t>(v)]).second);
    }
  }
}

TEST(Placement, ChainPlacedNearContiguously) {
  // A streaming chain should end up mostly with unit-hop neighbors; the
  // greedy heuristic grows from the center outward, so one long hop at a
  // chain end is acceptable, but never worse than the naive layout.
  TaskGraph g;
  NodeId prev = g.add_source(16, "s");
  for (int i = 1; i < 6; ++i) {
    const NodeId next = g.add_compute("c" + std::to_string(i));
    g.add_edge(prev, next, 16);
    prev = next;
  }
  g.declare_output(prev, 16);
  const auto r = schedule_streaming_graph(g, 6, PartitionVariant::kRLX);
  const Mesh mesh(2, 3);
  const Placement greedy = place_greedy(g, r.schedule, mesh);
  const Placement identity = place_identity(g, r.schedule, mesh);
  EXPECT_GE(greedy.metrics.weighted_hops, 5 * 16);  // optimum: all unit hops
  EXPECT_LE(greedy.metrics.weighted_hops, identity.metrics.weighted_hops);
  EXPECT_LE(greedy.metrics.mean_hops, 1.5);
}

TEST(Placement, LinkLoadReflectsRouting) {
  // Two tasks at opposite mesh corners: every element crosses the hottest
  // link once.
  TaskGraph g;
  const NodeId a = g.add_source(8, "a");
  const NodeId b = g.add_compute("b");
  g.add_edge(a, b, 8);
  g.declare_output(b, 8);
  const auto r = schedule_streaming_graph(g, 2, PartitionVariant::kRLX);
  const Mesh mesh(2, 2);
  std::vector<std::int64_t> pe_of(g.node_count(), -1);
  pe_of[0] = 0;  // (0,0)
  pe_of[1] = 3;  // (1,1)
  const PlacementMetrics metrics = evaluate_placement(g, r.schedule, mesh, pe_of);
  EXPECT_EQ(metrics.weighted_hops, 16);  // 2 hops * 8 elements
  EXPECT_EQ(metrics.max_link_load, 8);
}

TEST(Placement, RejectsOversizedBlocks) {
  const TaskGraph g = make_fft(16, 1);
  const auto r = schedule_streaming_graph(g, 64, PartitionVariant::kRLX);
  const Mesh tiny(2, 2);
  EXPECT_THROW((void)place_greedy(g, r.schedule, tiny), std::invalid_argument);
}

}  // namespace
}  // namespace sts
