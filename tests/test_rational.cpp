#include "support/rational.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

namespace sts {
namespace {

TEST(Rational, DefaultsToZero) {
  const Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesSignAndGcd) {
  const Rational r(6, -8);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, ThrowsOnZeroDenominator) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, ArithmeticStaysCanonical) {
  const Rational a(1, 3);
  const Rational b(1, 6);
  EXPECT_EQ(a + b, Rational(1, 2));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 18));
  EXPECT_EQ(a / b, Rational(2));
}

TEST(Rational, CompoundAssignment) {
  Rational r(3, 4);
  r += Rational(1, 4);
  EXPECT_EQ(r, Rational(1));
  r *= Rational(2, 3);
  EXPECT_EQ(r, Rational(2, 3));
  r -= Rational(2, 3);
  EXPECT_EQ(r, Rational(0));
}

TEST(Rational, ComparisonTotalOrder) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(5, 2), Rational(2));
  EXPECT_GE(Rational(-1, 2), Rational(-1));
  EXPECT_NE(Rational(1, 3), Rational(1, 4));
}

TEST(Rational, FloorCeilPositive) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(8, 2).floor(), 4);
  EXPECT_EQ(Rational(8, 2).ceil(), 4);
}

TEST(Rational, FloorCeilNegative) {
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(-8, 2).ceil(), -4);
}

TEST(Rational, ReciprocalAndDivisionByZero) {
  EXPECT_EQ(Rational(3, 5).reciprocal(), Rational(5, 3));
  EXPECT_THROW((void)Rational(0).reciprocal(), std::domain_error);
  EXPECT_THROW((void)(Rational(1) / Rational(0)), std::domain_error);
}

TEST(Rational, CeilMulMatchesScheduleUse) {
  // ceil((O-1) * S_o) terms from Section 5.1.
  EXPECT_EQ(ceil_mul(15, Rational(2)), 30);
  EXPECT_EQ(ceil_mul(3, Rational(8)), 24);
  EXPECT_EQ(ceil_mul(3, Rational(3, 2)), 5);  // 4.5 -> 5
  EXPECT_EQ(ceil_mul(0, Rational(7, 3)), 0);
}

TEST(Rational, ToStringForms) {
  EXPECT_EQ(Rational(4, 2).to_string(), "2");
  EXPECT_EQ(Rational(3, 2).to_string(), "3/2");
  EXPECT_EQ((-Rational(3, 2)).to_string(), "-3/2");
}

TEST(Rational, IsIntegerAndToDouble) {
  EXPECT_TRUE(Rational(10, 5).is_integer());
  EXPECT_FALSE(Rational(1, 3).is_integer());
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
}

class RationalRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RationalRoundTrip, MulDivRoundTrips) {
  const auto [num, den] = GetParam();
  const Rational r(num, den);
  EXPECT_EQ(r * r.reciprocal(), Rational(1));
  EXPECT_EQ(r + (-r), Rational(0));
  EXPECT_EQ((r / Rational(7, 3)) * Rational(7, 3), r);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RationalRoundTrip,
                         ::testing::Values(std::make_tuple(1, 1), std::make_tuple(3, 7),
                                           std::make_tuple(-5, 9), std::make_tuple(16, 4),
                                           std::make_tuple(1024, 3), std::make_tuple(-7, 2)));

}  // namespace
}  // namespace sts
