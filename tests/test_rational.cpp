#include "support/rational.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <tuple>

namespace sts {
namespace {

TEST(Rational, DefaultsToZero) {
  const Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesSignAndGcd) {
  const Rational r(6, -8);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, ThrowsOnZeroDenominator) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, ArithmeticStaysCanonical) {
  const Rational a(1, 3);
  const Rational b(1, 6);
  EXPECT_EQ(a + b, Rational(1, 2));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 18));
  EXPECT_EQ(a / b, Rational(2));
}

TEST(Rational, CompoundAssignment) {
  Rational r(3, 4);
  r += Rational(1, 4);
  EXPECT_EQ(r, Rational(1));
  r *= Rational(2, 3);
  EXPECT_EQ(r, Rational(2, 3));
  r -= Rational(2, 3);
  EXPECT_EQ(r, Rational(0));
}

TEST(Rational, ComparisonTotalOrder) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(5, 2), Rational(2));
  EXPECT_GE(Rational(-1, 2), Rational(-1));
  EXPECT_NE(Rational(1, 3), Rational(1, 4));
}

TEST(Rational, FloorCeilPositive) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(8, 2).floor(), 4);
  EXPECT_EQ(Rational(8, 2).ceil(), 4);
}

TEST(Rational, FloorCeilNegative) {
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(-8, 2).ceil(), -4);
}

TEST(Rational, ReciprocalAndDivisionByZero) {
  EXPECT_EQ(Rational(3, 5).reciprocal(), Rational(5, 3));
  EXPECT_THROW((void)Rational(0).reciprocal(), std::domain_error);
  EXPECT_THROW((void)(Rational(1) / Rational(0)), std::domain_error);
}

TEST(Rational, CeilMulMatchesScheduleUse) {
  // ceil((O-1) * S_o) terms from Section 5.1.
  EXPECT_EQ(ceil_mul(15, Rational(2)), 30);
  EXPECT_EQ(ceil_mul(3, Rational(8)), 24);
  EXPECT_EQ(ceil_mul(3, Rational(3, 2)), 5);  // 4.5 -> 5
  EXPECT_EQ(ceil_mul(0, Rational(7, 3)), 0);
}

TEST(Rational, ToStringForms) {
  EXPECT_EQ(Rational(4, 2).to_string(), "2");
  EXPECT_EQ(Rational(3, 2).to_string(), "3/2");
  EXPECT_EQ((-Rational(3, 2)).to_string(), "-3/2");
}

TEST(Rational, IsIntegerAndToDouble) {
  EXPECT_TRUE(Rational(10, 5).is_integer());
  EXPECT_FALSE(Rational(1, 3).is_integer());
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
}

// ---------------------------------------------------- overflow regressions
//
// Deep-chain interval products with volumes up to 2^20 produce rationals
// whose comparison cross-products and un-reduced sum intermediates exceed
// 2^63. The old int64 arithmetic silently wrapped; everything now runs
// through 128-bit intermediates.

TEST(RationalOverflow, ComparisonSurvivesCrossProductOverflow) {
  const std::int64_t big = std::int64_t{1} << 40;
  const Rational a(big + 1, big);  // 1 + 1/2^40
  const Rational b(big, big - 1);  // 1 + 1/(2^40 - 1), strictly larger
  // Cross-products are ~2^80: the int64 comparison wrapped and misordered.
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, b);
  EXPECT_FALSE(b <= a);
  EXPECT_FALSE(a > b);
}

TEST(RationalOverflow, OrderingExactAtIntervalMagnitudes) {
  // S_o-style intervals after ~3 compounded 2^20 volume ratios.
  const std::int64_t v20 = std::int64_t{1} << 20;
  const Rational s1 = Rational(v20, 3) * Rational(v20, 5);   // 2^40 / 15
  const Rational s2 = Rational(v20, 5) * Rational(v20, 3);   // equal
  const Rational s3 = s1 * Rational(v20, v20 - 1);           // slightly larger
  EXPECT_EQ(s1, s2);
  EXPECT_LE(s1, s2);
  EXPECT_GE(s2, s1);
  EXPECT_LT(s1, s3);
  EXPECT_GT(s3, s2);
}

TEST(RationalOverflow, AdditionReducesThroughWideIntermediates) {
  // Both numerators are near 2^62; the un-reduced sum numerator is 2^63 + 4,
  // which wraps in int64 — but gcd reduction brings the true result back in
  // range, so this must succeed exactly.
  const std::int64_t n1 = (std::int64_t{1} << 62) + 3;
  const std::int64_t n2 = (std::int64_t{1} << 62) + 1;
  const Rational sum = Rational(n1, 2) + Rational(n2, 2);
  EXPECT_EQ(sum, Rational((std::int64_t{1} << 62) + 2));
  EXPECT_EQ(sum.den(), 1);
  // Same shape through subtraction of a negative.
  EXPECT_EQ(Rational(n1, 2) - Rational(-n2, 2), sum);
}

TEST(RationalOverflow, ThrowsWhenCanonicalResultExceedsInt64) {
  const std::int64_t half = std::int64_t{1} << 62;
  EXPECT_THROW((void)(Rational(half) + Rational(half)), std::overflow_error);
  EXPECT_THROW((void)(Rational(-half) - Rational(half + 1)), std::overflow_error);
  // -2^63 itself is representable: the check is exact, not conservative.
  EXPECT_EQ((Rational(-half) - Rational(half)).num(), std::numeric_limits<std::int64_t>::min());
  const std::int64_t v20 = std::int64_t{1} << 20;
  // 1/2^20 compounded four times: denominator 2^80 cannot be represented.
  const Rational step(1, v20);
  EXPECT_THROW((void)(step * step * step * step), std::overflow_error);
  // Coprime odd denominators whose lcm 2^64 - 1 exceeds int64 and cannot
  // reduce (the sum numerator 2^33 shares no factor with it).
  EXPECT_THROW((void)(Rational(1, (std::int64_t{1} << 32) + 1) +
                      Rational(1, (std::int64_t{1} << 32) - 1)),
               std::overflow_error);
}

TEST(RationalOverflow, Int64MinIsRepresentableButItsNegationThrows) {
  const std::int64_t half = std::int64_t{1} << 62;
  const Rational min_val = Rational(-half) - Rational(half);
  ASSERT_EQ(min_val.num(), std::numeric_limits<std::int64_t>::min());
  // Every negation path is checked instead of UB: -INT64_MIN and a 2^63
  // denominator are unrepresentable.
  EXPECT_THROW((void)(-min_val), std::overflow_error);
  EXPECT_THROW((void)min_val.reciprocal(), std::overflow_error);
  EXPECT_THROW((void)(Rational(0) - min_val), std::overflow_error);
  EXPECT_THROW((void)Rational(std::numeric_limits<std::int64_t>::min(), -1),
               std::overflow_error);
  // Non-negating operations on the extreme value stay exact.
  EXPECT_EQ(min_val.floor(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(min_val.ceil(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ((min_val / Rational(2)).num(), -half);
  EXPECT_LT(min_val, Rational(-half));
}

TEST(RationalOverflow, CeilMulExactAtPaperVolumeExtremes) {
  // ceil((O-1) * S_o) with 2^20 volumes: exact, no wrap.
  const std::int64_t v20 = std::int64_t{1} << 20;
  EXPECT_EQ(ceil_mul(v20 - 1, Rational(v20, 3)), ((v20 - 1) * v20 + 2) / 3);
  EXPECT_EQ(ceil_mul(v20, Rational(v20, v20 - 1)), v20 + 2);  // ceil(2^40/(2^40-2^20))
}

class RationalRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RationalRoundTrip, MulDivRoundTrips) {
  const auto [num, den] = GetParam();
  const Rational r(num, den);
  EXPECT_EQ(r * r.reciprocal(), Rational(1));
  EXPECT_EQ(r + (-r), Rational(0));
  EXPECT_EQ((r / Rational(7, 3)) * Rational(7, 3), r);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RationalRoundTrip,
                         ::testing::Values(std::make_tuple(1, 1), std::make_tuple(3, 7),
                                           std::make_tuple(-5, 9), std::make_tuple(16, 4),
                                           std::make_tuple(1024, 3), std::make_tuple(-7, 2)));

}  // namespace
}  // namespace sts
