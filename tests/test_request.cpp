// ScheduleRequest envelope round-trip coverage: serialize -> parse must
// preserve the request identity (key(), and therefore the cache entry it
// resolves to) across randomized graphs, machine configs, and sim options;
// malformed envelopes must be rejected with typed errors, never silently
// coerced into a different scenario.

#include "service/request.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz_specs.hpp"
#include "graph/serialization.hpp"
#include "paper_examples.hpp"
#include "service/schedule_service.hpp"
#include "support/json.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

/// A request exercising every envelope field, varied by (shape, seed).
ScheduleRequest fuzz_request(int shape, std::uint64_t seed) {
  ScheduleRequest request;
  request.graph = make_random_layered(testing::fuzz_spec_for(shape), seed);
  request.scheduler = (seed % 2 == 0) ? "streaming-rlx" : "streaming-lts";
  request.machine.num_pes = 4 + static_cast<std::int64_t>(seed % 29);
  request.machine.default_fifo_capacity = 1 + static_cast<std::int64_t>(seed % 3);
  if (seed % 3 == 0) request.machine.place_on_mesh = true;
  if (seed % 4 == 0) {
    // Fractional speeds stress the double round-trip (to_chars shortest
    // form must parse back bit-identically).
    request.machine.pe_speed = {1.0, 0.75, 1.0 / 3.0, 2.5 + 0.1 * static_cast<double>(seed)};
  }
  if (seed % 2 == 0) {
    SimOptions sim;
    sim.engine = (seed % 4 == 0) ? SimEngine::kTickAccurate : SimEngine::kBulkAdvance;
    sim.max_ticks = 1'000'000 + static_cast<std::int64_t>(seed);
    sim.record_trace = seed % 8 == 0;
    request.sim = sim;
  }
  if (seed % 5 == 0) request.admission = AdmissionPolicy::kReject;
  request.priority = static_cast<std::int32_t>(seed % 3);
  if (seed % 3 == 1) request.label = "fuzz \"label\"\n#" + std::to_string(seed);
  return request;
}

TEST(ScheduleRequestJson, RoundTripPreservesKeyAcrossFuzzedEnvelopes) {
  for (int shape = 0; shape < 4; ++shape) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      SCOPED_TRACE("shape " + std::to_string(shape) + ", seed " + std::to_string(seed));
      const ScheduleRequest original = fuzz_request(shape, seed);
      const std::string json = original.to_json();
      const ScheduleRequest parsed = ScheduleRequest::from_json(json);

      // The acceptance invariant: identical key => identical cache entry.
      EXPECT_EQ(parsed.key(), original.key());
      EXPECT_EQ(canonical_fingerprint(parsed.graph), canonical_fingerprint(original.graph));
      EXPECT_EQ(parsed.graph.node_count(), original.graph.node_count());
      EXPECT_EQ(parsed.graph.edge_count(), original.graph.edge_count());
      EXPECT_EQ(parsed.scheduler, original.scheduler);
      EXPECT_EQ(parsed.machine.cache_key(), original.machine.cache_key());
      EXPECT_EQ(parsed.sim.has_value(), original.sim.has_value());
      if (original.sim) EXPECT_EQ(parsed.sim->cache_key(), original.sim->cache_key());
      EXPECT_EQ(parsed.admission, original.admission);
      EXPECT_EQ(parsed.priority, original.priority);
      EXPECT_EQ(parsed.label, original.label);

      // Serialization is stable: a second trip emits the same bytes.
      EXPECT_EQ(parsed.to_json(), json);
    }
  }
}

TEST(ScheduleRequestJson, InlineGraphPreservesNamesAndStructure) {
  ScheduleRequest request;
  request.graph = testing::figure8_graph();  // named nodes
  const ScheduleRequest parsed = ScheduleRequest::from_json(request.to_json());
  EXPECT_EQ(save_task_graph_to_string(parsed.graph),
            save_task_graph_to_string(request.graph));
}

TEST(ScheduleRequestJson, GeneratorRefMaterializesTheSameScenario) {
  const ScheduleRequest parsed = ScheduleRequest::from_json(
      R"({"schema_version": 2, "scheduler": "streaming-rlx", "machine": {"pes": 16},)"
      R"( "graph": {"generator": "fft", "param": 16, "seed": 7}})");
  ASSERT_TRUE(parsed.graph_ref.has_value());
  EXPECT_EQ(parsed.graph_ref->label(), "fft 16 7");

  ScheduleRequest inline_request;
  inline_request.graph = make_fft(16, 7);
  inline_request.scheduler = "streaming-rlx";
  inline_request.machine.num_pes = 16;
  EXPECT_EQ(parsed.key(), inline_request.key())
      << "a generator ref is identity-equal to its inline expansion";

  // The ref (not the expanded node list) round-trips through JSON.
  const std::string json = parsed.to_json();
  EXPECT_NE(json.find("\"generator\": \"fft\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"nodes\""), std::string::npos) << json;
  EXPECT_EQ(ScheduleRequest::from_json(json).key(), parsed.key());
}

TEST(ScheduleRequestJson, RoundTrippedRequestHitsTheSameCacheEntry) {
  // The end-to-end acceptance gate: submit an envelope, round-trip it
  // through JSON, submit again — the parsed request must resolve from the
  // cache to the bit-identical result object.
  ScheduleService service(ServiceConfig{2, 4096});
  ScheduleRequest original;
  original.graph = make_gaussian_elimination(6, 11);
  original.scheduler = "streaming-rlx";
  original.machine.num_pes = 8;
  original.sim = SimOptions{};

  const std::string json = original.to_json();
  const auto first = service.submit(std::move(original)).future.get();

  ScheduleRequest reparsed = ScheduleRequest::from_json(json);
  auto second = service.submit(std::move(reparsed)).future;
  service.wait_idle();
  EXPECT_EQ(second.get().get(), first.get())
      << "serialize -> parse -> submit must be a cache hit on the same object";
  EXPECT_EQ(service.stats().fast_path_hits, 1u);
  EXPECT_EQ(service.stats().cache.misses, 1u);
}

TEST(ScheduleRequestJson, MalformedEnvelopesAreRejected) {
  const std::vector<std::string> malformed = {
      "",                                  // empty
      "{",                                 // truncated
      "not json at all",                   // no document
      R"({"schema_version": 1})",          // missing scheduler + graph
      R"({"scheduler": "streaming-rlx", "graph": {"nodes": [], "edges": []}})",  // no version
      R"({"schema_version": 99, "scheduler": "s", "graph": {"nodes": [], "edges": []}})",
      R"({"schema_version": "1", "scheduler": "s", "graph": {"nodes": [], "edges": []}})",
      R"({"schema_version": 1, "scheduler": "", "graph": {"nodes": [], "edges": []}})",
      R"({"schema_version": 1, "scheduler": "s", "graph": {"nodes": [], "edges": []}, "x": 1})",
      R"({"schema_version": 1, "scheduler": "s", "graph": {"nodes": [{"kind": "alien"}], "edges": []}})",
      R"({"schema_version": 1, "scheduler": "s", "graph": {"nodes": [{"kind": "source"}], "edges": []}})",
      R"({"schema_version": 1, "scheduler": "s", "graph": {"nodes": [{"kind": "sink", "output": 4}], "edges": []}})",
      R"({"schema_version": 1, "scheduler": "s", "graph": {"nodes": [], "edges": [[0, 1]]}})",
      R"({"schema_version": 1, "scheduler": "s", "graph": {"nodes": [], "edges": [[0, 1, 4]]}})",
      R"({"schema_version": 1, "scheduler": "s", "graph": {"generator": "warp", "param": 4, "seed": 1}})",
      R"({"schema_version": 1, "scheduler": "s", "graph": {"generator": "fft", "param": 17, "seed": 1}})",
      R"({"schema_version": 1, "scheduler": "s", "graph": {"generator": "fft", "param": 16, "seed": -1}})",
      R"({"schema_version": 1, "scheduler": "s", "graph": {"nodes": [], "edges": []}, "priority": 1.5})",
      R"({"schema_version": 1, "scheduler": "s", "graph": {"nodes": [], "edges": []}, "admission": "maybe"})",
      R"({"schema_version": 1, "scheduler": "s", "graph": {"nodes": [], "edges": []}, "sim": {"engine": "warp"}})",
      R"({"schema_version": 1, "scheduler": "s", "graph": {"nodes": [], "edges": []}, "sim": {"max_ticks": 0}})",
      R"({"schema_version": 1, "scheduler": "s", "graph": {"nodes": [], "edges": []}} trailing)",
      R"({"schema_version": 1, "schema_version": 1, "scheduler": "s", "graph": {"nodes": [], "edges": []}})",
  };
  for (const std::string& text : malformed) {
    EXPECT_THROW((void)ScheduleRequest::from_json(text), std::invalid_argument)
        << "accepted: " << text;
  }
}

TEST(ScheduleRequestJson, EscapedLabelsSurviveTheTrip) {
  ScheduleRequest request;
  request.graph = make_chain(4, 1);
  request.label = "tabs\tquotes\"slashes\\and\nnewlines";
  const ScheduleRequest parsed = ScheduleRequest::from_json(request.to_json());
  EXPECT_EQ(parsed.label, request.label);
}

TEST(ScheduleRequestJson, KeyExcludesDeliveryHints) {
  ScheduleRequest a;
  a.graph = make_chain(6, 2);
  ScheduleRequest b = a;
  b.admission = AdmissionPolicy::kReject;
  b.priority = 7;
  b.label = "other";
  EXPECT_EQ(a.key(), b.key()) << "admission/priority/label are not identity";

  ScheduleRequest c = a;
  c.machine.num_pes = a.machine.num_pes + 1;
  EXPECT_NE(a.key(), c.key());
}

TEST(JsonParser, RejectsStructuralGarbage) {
  for (const char* text :
       {"{\"a\": 1,}", "[1, 2,]", "{\"a\" 1}", "{1: 2}", "\"unterminated", "[1 2]",
        "{\"a\": 1} {\"b\": 2}", "tru", "nul", "-", "1e", "{\"a\": \\x}",
        "\"lone \\ud800 surrogate\""}) {
    EXPECT_THROW((void)parse_json(text), std::invalid_argument) << "accepted: " << text;
  }
}

TEST(JsonParser, KeepsInt64Exact) {
  const JsonValue v = parse_json("[9223372036854775807, -9223372036854775808, 2.5]");
  EXPECT_EQ(v.items()[0].as_int(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(v.items()[1].as_int(), std::numeric_limits<std::int64_t>::min());
  EXPECT_THROW((void)v.items()[2].as_int(), std::invalid_argument);
  EXPECT_DOUBLE_EQ(v.items()[2].as_double(), 2.5);
}

}  // namespace
}  // namespace sts
