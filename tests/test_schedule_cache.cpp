// Bounded-LRU and single-flight semantics of ScheduleCache, including the
// threaded stress cases the serving layer depends on: exactly one schedule
// computed per unique key under concurrent hammering, exact hit/miss/race
// accounting, and LRU eviction order. (Cache-vs-scheduler integration lives
// in test_pipeline.cpp.)

#include "pipeline/schedule_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace sts {
namespace {

/// A compute callable producing a distinguishable dummy result and counting
/// its invocations — the schedule pipeline itself is irrelevant here.
std::function<ScheduleResult()> counted_result(std::atomic<int>& counter,
                                               std::int64_t makespan) {
  return [&counter, makespan] {
    ++counter;
    ScheduleResult r;
    r.makespan = makespan;
    return r;
  };
}

TEST(ScheduleCacheLru, RejectsZeroCapacity) {
  EXPECT_THROW(ScheduleCache(0), std::invalid_argument);
  ScheduleCache cache(4);
  EXPECT_THROW(cache.set_capacity(0), std::invalid_argument);
  EXPECT_EQ(cache.capacity(), 4u);
}

TEST(ScheduleCacheLru, EvictsLeastRecentlyUsed) {
  ScheduleCache cache(3);
  std::atomic<int> computed{0};
  for (const char* key : {"a", "b", "c"}) {
    (void)cache.get_or_compute(key, counted_result(computed, 1));
  }
  // Touch "a": recency order is now a, c, b.
  ASSERT_NE(cache.try_get("a"), nullptr);

  (void)cache.get_or_compute("d", counted_result(computed, 2));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.contains("b")) << "b was least recently used";
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_TRUE(cache.contains("d"));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ScheduleCacheLru, GetOrComputeBumpsRecencyLikeTryGet) {
  ScheduleCache cache(2);
  std::atomic<int> computed{0};
  (void)cache.get_or_compute("x", counted_result(computed, 1));
  (void)cache.get_or_compute("y", counted_result(computed, 2));
  (void)cache.get_or_compute("x", counted_result(computed, 3));  // hit, bumps x
  (void)cache.get_or_compute("z", counted_result(computed, 4));  // evicts y
  EXPECT_TRUE(cache.contains("x"));
  EXPECT_FALSE(cache.contains("y"));
  EXPECT_EQ(computed.load(), 3);
}

TEST(ScheduleCacheLru, EvictedKeyRecomputes) {
  ScheduleCache cache(1);
  std::atomic<int> computed{0};
  EXPECT_EQ(cache.get_or_compute("k1", counted_result(computed, 10))->makespan, 10);
  EXPECT_EQ(cache.get_or_compute("k2", counted_result(computed, 20))->makespan, 20);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.get_or_compute("k1", counted_result(computed, 11))->makespan, 11)
      << "evicted entry must be recomputed, not resurrected";
  EXPECT_EQ(computed.load(), 3);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ScheduleCacheLru, SetCapacityShrinksAndEvicts) {
  ScheduleCache cache(8);
  std::atomic<int> computed{0};
  for (int i = 0; i < 8; ++i) {
    (void)cache.get_or_compute("key" + std::to_string(i), counted_result(computed, i + 1));
  }
  EXPECT_EQ(cache.size(), 8u);
  cache.set_capacity(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 6u);
  EXPECT_TRUE(cache.contains("key7"));
  EXPECT_TRUE(cache.contains("key6"));
  EXPECT_FALSE(cache.contains("key0"));
}

TEST(ScheduleCacheLru, TryGetMissesAreNotCountedAsMisses) {
  ScheduleCache cache(4);
  EXPECT_EQ(cache.try_get("absent"), nullptr);
  const ScheduleCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(ScheduleCacheSingleFlight, ExceptionPropagatesAndKeyRetries) {
  ScheduleCache cache(4);
  std::atomic<int> attempts{0};
  const auto failing = [&attempts]() -> ScheduleResult {
    ++attempts;
    throw std::runtime_error("scheduler exploded");
  };
  EXPECT_THROW((void)cache.get_or_compute("k", failing), std::runtime_error);
  EXPECT_EQ(cache.size(), 0u) << "failures must not be cached";

  std::atomic<int> computed{0};
  EXPECT_EQ(cache.get_or_compute("k", counted_result(computed, 5))->makespan, 5);
  EXPECT_EQ(attempts.load(), 1);
  EXPECT_EQ(cache.stats().misses, 2u);
}

// The satellite invariant: under concurrent hammering of a small key set,
// every unique key is computed exactly once (single-flight), race losers are
// classified as races or hits — never as misses — and the counters add up to
// exactly one classification per lookup.
TEST(ScheduleCacheSingleFlight, ConcurrentHammeringComputesEachKeyOnce) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 25;
  constexpr int kKeys = 4;

  ScheduleCache cache(kKeys);  // large enough that nothing evicts
  std::vector<std::atomic<int>> computed(kKeys);
  std::atomic<int> ready{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ++ready;
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kIterations; ++i) {
        const int k = (t + i) % kKeys;
        const std::string key = "hot-key-" + std::to_string(k);
        const auto result = cache.get_or_compute(key, [&computed, k] {
          ++computed[static_cast<std::size_t>(k)];
          // Widen the in-flight window so racers actually pile up.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          ScheduleResult r;
          r.makespan = k + 1;
          return r;
        });
        ASSERT_EQ(result->makespan, k + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(computed[static_cast<std::size_t>(k)].load(), 1) << "key " << k;
  }
  const ScheduleCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(stats.hits + stats.misses + stats.races,
            static_cast<std::uint64_t>(kThreads) * kIterations)
      << "every lookup classified exactly once";
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
}

// Threaded eviction stress: a key set larger than the capacity, hammered from
// several threads — the bound must hold at every point and the books must
// balance even while single-flight and eviction interleave.
TEST(ScheduleCacheSingleFlight, ConcurrentEvictionKeepsBoundAndBooks) {
  constexpr int kThreads = 6;
  constexpr int kIterations = 40;
  constexpr int kKeys = 12;
  constexpr std::size_t kCapacity = 4;

  ScheduleCache cache(kCapacity);
  std::atomic<int> computed{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const int k = (t * 7 + i) % kKeys;
        const auto result =
            cache.get_or_compute("churn-" + std::to_string(k), counted_result(computed, k + 1));
        ASSERT_EQ(result->makespan, k + 1);
        ASSERT_LE(cache.size(), kCapacity);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const ScheduleCache::Stats stats = cache.stats();
  EXPECT_LE(cache.size(), kCapacity);
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(computed.load()))
      << "misses == schedules actually computed";
  EXPECT_EQ(stats.hits + stats.misses + stats.races,
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_GT(stats.evictions, 0u);
}

// ------------------------------------------------------ size-aware admission
// Capacity is a TOTAL WEIGHT bound (schedule entries weigh their graph's
// node count); the generic weight-1 default above degenerates to the classic
// entry-count LRU, these cases pin down the weighted behavior.

TEST(ScheduleCacheWeighted, CapacityBoundsTotalWeightNotEntryCount) {
  ScheduleCache cache(10);
  std::atomic<int> computed{0};
  (void)cache.get_or_compute("w4-a", counted_result(computed, 1), 4);
  (void)cache.get_or_compute("w4-b", counted_result(computed, 2), 4);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.total_weight(), 8u);

  // Weight 4 more would exceed 10: the LRU entry (w4-a) must go.
  (void)cache.get_or_compute("w4-c", counted_result(computed, 3), 4);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.total_weight(), 8u);
  EXPECT_FALSE(cache.contains("w4-a"));
  EXPECT_TRUE(cache.contains("w4-b"));
  EXPECT_TRUE(cache.contains("w4-c"));

  const ScheduleCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.evicted_weight, 4u);
}

TEST(ScheduleCacheWeighted, LightEntriesPackUntilTheWeightBound) {
  ScheduleCache cache(6);
  std::atomic<int> computed{0};
  for (int i = 0; i < 6; ++i) {
    (void)cache.get_or_compute("w1-" + std::to_string(i), counted_result(computed, i), 1);
  }
  EXPECT_EQ(cache.size(), 6u);
  EXPECT_EQ(cache.total_weight(), 6u);
  // One heavy insert displaces exactly enough light entries to fit.
  (void)cache.get_or_compute("w4", counted_result(computed, 9), 4);
  EXPECT_EQ(cache.total_weight(), 6u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.contains("w4"));
  EXPECT_FALSE(cache.contains("w1-0"));
  EXPECT_FALSE(cache.contains("w1-3"));
  EXPECT_TRUE(cache.contains("w1-4"));
  EXPECT_EQ(cache.stats().evicted_weight, 4u);
}

TEST(ScheduleCacheWeighted, OversizeEntryIsDroppedImmediately) {
  ScheduleCache cache(4);
  std::atomic<int> computed{0};
  (void)cache.get_or_compute("small", counted_result(computed, 1), 2);
  const auto big = cache.get_or_compute("big", counted_result(computed, 2), 10);
  EXPECT_EQ(big->makespan, 2) << "the caller still gets the computed result";
  EXPECT_FALSE(cache.contains("big")) << "an entry that can never fit is not cached";
  EXPECT_EQ(cache.total_weight(), 2u);
  EXPECT_TRUE(cache.contains("small")) << "dropping the oversize entry spares residents";

  // Requesting it again recomputes (and drops again): 2 misses, no hits.
  (void)cache.get_or_compute("big", counted_result(computed, 3), 10);
  EXPECT_EQ(computed.load(), 3);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_GE(cache.stats().evicted_weight, 20u);
}

TEST(ScheduleCacheWeighted, SetCapacityShrinksByWeight) {
  ScheduleCache cache(100);
  std::atomic<int> computed{0};
  for (int i = 0; i < 5; ++i) {
    (void)cache.get_or_compute("w10-" + std::to_string(i), counted_result(computed, i), 10);
  }
  EXPECT_EQ(cache.total_weight(), 50u);
  cache.set_capacity(25);
  EXPECT_LE(cache.total_weight(), 25u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.contains("w10-4"));
  EXPECT_TRUE(cache.contains("w10-3"));
  EXPECT_EQ(cache.stats().evicted_weight, 30u);
}

TEST(ScheduleCacheWeighted, ZeroWeightIsClampedToOne) {
  ScheduleCache cache(2);
  std::atomic<int> computed{0};
  (void)cache.get_or_compute("z1", counted_result(computed, 1), 0);
  (void)cache.get_or_compute("z2", counted_result(computed, 2), 0);
  EXPECT_EQ(cache.total_weight(), 2u);
  (void)cache.get_or_compute("z3", counted_result(computed, 3), 0);
  EXPECT_EQ(cache.size(), 2u) << "weight-0 entries must still occupy capacity";
}

// ---------------------------------------------------------------- ttl expiry
// A ttl of zero makes every resident entry expired on its next probe, which
// turns wall-clock expiry into a deterministic test (no sleeps).

TEST(ScheduleCacheTtl, NoTtlNeverExpires) {
  ScheduleCache cache(8);
  EXPECT_FALSE(cache.ttl().has_value());
  std::atomic<int> computed{0};
  (void)cache.get_or_compute("k", counted_result(computed, 1));
  ASSERT_NE(cache.try_get("k"), nullptr);
  EXPECT_EQ(cache.stats().expired, 0u);
}

TEST(ScheduleCacheTtl, ZeroTtlExpiresOnNextProbe) {
  ScheduleCache cache(8, std::chrono::nanoseconds{0});
  std::atomic<int> computed{0};
  (void)cache.get_or_compute("k", counted_result(computed, 1), 3);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.total_weight(), 3u);

  EXPECT_EQ(cache.try_get("k"), nullptr) << "entry past its ttl must read as absent";
  EXPECT_EQ(cache.size(), 0u) << "the expired probe physically drops the entry";
  EXPECT_EQ(cache.total_weight(), 0u) << "expiry must release the entry's weight";
  const ScheduleCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.evictions, 0u) << "expiry is not an eviction";
  EXPECT_EQ(stats.hits, 0u);
}

TEST(ScheduleCacheTtl, ExpiredEntryRecomputes) {
  ScheduleCache cache(8, std::chrono::nanoseconds{0});
  std::atomic<int> computed{0};
  (void)cache.get_or_compute("k", counted_result(computed, 1));
  (void)cache.get_or_compute("k", counted_result(computed, 2));
  EXPECT_EQ(computed.load(), 2) << "a lookup that expires the entry is a miss";
  const ScheduleCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  // One entry dropped by the second probe, plus the re-inserted entry which
  // (zero ttl) is itself already past its ttl at the snapshot.
  EXPECT_EQ(stats.expired, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(ScheduleCacheTtl, ContainsReportsExpiredWithoutErasing) {
  ScheduleCache cache(8, std::chrono::nanoseconds{0});
  std::atomic<int> computed{0};
  (void)cache.get_or_compute("k", counted_result(computed, 1));
  EXPECT_FALSE(cache.contains("k")) << "contains must see through the ttl";
  EXPECT_EQ(cache.size(), 1u) << "const inspection must not mutate the cache";
  // Regression: stats() must agree with what contains() just read — the
  // still-resident entry is past its ttl, so it reports as expired even
  // though no mutating probe has physically dropped it yet.
  EXPECT_EQ(cache.stats().expired, 1u);
}

TEST(ScheduleCacheTtl, LongTtlKeepsEntriesAlive) {
  ScheduleCache cache(8, std::chrono::hours{1});
  std::atomic<int> computed{0};
  (void)cache.get_or_compute("k", counted_result(computed, 1));
  (void)cache.get_or_compute("k", counted_result(computed, 2));
  EXPECT_EQ(computed.load(), 1);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().expired, 0u);
}

TEST(ScheduleCacheTtl, SetTtlAppliesToResidentEntries) {
  ScheduleCache cache(8);
  std::atomic<int> computed{0};
  (void)cache.get_or_compute("k", counted_result(computed, 1));
  ASSERT_TRUE(cache.contains("k"));
  cache.set_ttl(std::chrono::nanoseconds{0});
  ASSERT_TRUE(cache.ttl().has_value());
  EXPECT_EQ(cache.try_get("k"), nullptr) << "insertion times predate the ttl change";
  cache.set_ttl(std::nullopt);
  (void)cache.get_or_compute("k", counted_result(computed, 2));
  ASSERT_NE(cache.try_get("k"), nullptr) << "clearing the ttl disables expiry again";
  EXPECT_EQ(computed.load(), 2);
}

}  // namespace
}  // namespace sts
