#include "graph/serialization.hpp"

#include <gtest/gtest.h>

#include "paper_examples.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

void expect_isomorphic(const TaskGraph& a, const TaskGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (NodeId v = 0; static_cast<std::size_t>(v) < a.node_count(); ++v) {
    EXPECT_EQ(a.kind(v), b.kind(v)) << v;
    EXPECT_EQ(a.name(v), b.name(v)) << v;
    EXPECT_EQ(a.output_volume(v), b.output_volume(v)) << v;
    EXPECT_EQ(a.input_volume(v), b.input_volume(v)) << v;
  }
  for (EdgeId e = 0; static_cast<std::size_t>(e) < a.edge_count(); ++e) {
    EXPECT_EQ(a.edge(e).src, b.edge(e).src) << e;
    EXPECT_EQ(a.edge(e).dst, b.edge(e).dst) << e;
    EXPECT_EQ(a.edge(e).volume, b.edge(e).volume) << e;
  }
}

TEST(Serialization, RoundTripsPaperExamples) {
  for (const TaskGraph& g :
       {testing::figure8_graph(), testing::figure9_graph1(), testing::figure9_graph2(),
        testing::buffer_split_example()}) {
    const TaskGraph loaded = load_task_graph_from_string(save_task_graph_to_string(g));
    expect_isomorphic(g, loaded);
    EXPECT_TRUE(loaded.validate().empty());
  }
}

TEST(Serialization, RoundTripsGeneratedWorkloads) {
  for (const std::uint64_t seed : {1u, 5u}) {
    const TaskGraph g = make_cholesky(5, seed);
    expect_isomorphic(g, load_task_graph_from_string(save_task_graph_to_string(g)));
  }
}

TEST(Serialization, ParsesCommentsAndBlankLines) {
  const TaskGraph g = load_task_graph_from_string(R"(
# a tiny pipeline
node 0 source src
output 0 16    # the input stream

node 1 compute half
output 1 8
edge 0 1 16
)");
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.output_volume(0), 16);
  EXPECT_EQ(g.rate(1), Rational(1, 2));
  EXPECT_TRUE(g.validate().empty());
}

TEST(Serialization, BufferAndSinkNodes) {
  const TaskGraph g = load_task_graph_from_string(R"(
node 0 source s
output 0 4
node 1 buffer b
output 1 8
node 2 compute c
node 3 sink t
edge 0 1 4
edge 1 2 8
edge 2 3 8
)");
  EXPECT_EQ(g.kind(1), NodeKind::kBuffer);
  EXPECT_EQ(g.kind(3), NodeKind::kSink);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Serialization, RejectsMalformedInput) {
  EXPECT_THROW((void)load_task_graph_from_string("frobnicate 1 2"), std::invalid_argument);
  EXPECT_THROW((void)load_task_graph_from_string("node 1 compute"),
               std::invalid_argument);  // ids must start at 0
  EXPECT_THROW((void)load_task_graph_from_string("node 0 gizmo"), std::invalid_argument);
  EXPECT_THROW((void)load_task_graph_from_string("edge 0"), std::invalid_argument);
  EXPECT_THROW((void)load_task_graph_from_string("node 0 source s"),
               std::invalid_argument);  // source without output record
  EXPECT_THROW((void)load_task_graph_from_string("node 0 compute c\noutput 5 4"),
               std::invalid_argument);  // output for unknown node
}

TEST(Serialization, SavedFormIsStable) {
  const TaskGraph g = testing::figure8_graph();
  const std::string once = save_task_graph_to_string(g);
  const std::string twice = save_task_graph_to_string(load_task_graph_from_string(once));
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace sts
