#include "service/schedule_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <stdexcept>
#include <vector>

#include "paper_examples.hpp"
#include "pipeline/registry.hpp"
#include "service/request.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

MachineConfig machine_with(std::int64_t pes) {
  MachineConfig machine;
  machine.num_pes = pes;
  return machine;
}

ScheduleRequest request_for(const TaskGraph& graph, std::string scheduler, std::int64_t pes) {
  ScheduleRequest request;
  request.graph = graph;
  request.scheduler = std::move(scheduler);
  request.machine.num_pes = pes;
  return request;
}

TEST(ScheduleService, MatchesDirectScheduling) {
  ScheduleService service(ServiceConfig{2, 4096});
  const TaskGraph g = make_fft(16, 7);
  auto future = service.submit(request_for(g, "streaming-rlx", 16)).future;
  const auto result = future.get();
  ASSERT_NE(result, nullptr);

  const ScheduleResult direct = schedule_by_name("streaming-rlx", g, machine_with(16));
  EXPECT_EQ(result->makespan, direct.makespan);
  EXPECT_EQ(result->buffers->total_capacity, direct.buffers->total_capacity);

  // Counters are published after the promise, so synchronize via wait_idle.
  service.wait_idle();
  const ScheduleService::Stats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ScheduleService, ScheduleReturnsOkResponse) {
  ScheduleService service(ServiceConfig{2, 4096});
  const ScheduleResponse response =
      service.schedule(request_for(testing::figure8_graph(), "streaming-rlx", 8));
  ASSERT_TRUE(response.ok());
  ASSERT_NE(response.result, nullptr);
  EXPECT_GT(response.result->makespan, 0);
  EXPECT_FALSE(response.rejected.has_value());
  EXPECT_TRUE(response.error.empty());

  const std::string json = response.to_json();
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"makespan\": "), std::string::npos) << json;
}

TEST(ScheduleService, ScheduleFoldsErrorsIntoTheResponse) {
  ScheduleService service(ServiceConfig{2, 4096});
  const ScheduleResponse response =
      service.schedule(request_for(testing::figure8_graph(), "no-such-scheduler", 8));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status, ScheduleResponse::Status::kError);
  EXPECT_NE(response.error.find("no-such-scheduler"), std::string::npos) << response.error;
  EXPECT_NE(response.to_json().find("\"status\": \"error\""), std::string::npos);
}

TEST(ScheduleService, SecondSubmissionTakesFastPath) {
  ScheduleService service(ServiceConfig{2, 4096});
  const TaskGraph g = testing::figure8_graph();
  const auto first = service.submit(request_for(g, "streaming-rlx", 8)).future.get();
  auto second_future = service.submit(request_for(g, "streaming-rlx", 8)).future;
  // A cached result resolves synchronously inside submit.
  EXPECT_EQ(second_future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(second_future.get().get(), first.get()) << "same immutable result object";
  EXPECT_EQ(service.stats().fast_path_hits, 1u);
}

TEST(ScheduleService, DuplicateSubmissionsComputeOnce) {
  constexpr int kCopies = 24;
  ScheduleService service(ServiceConfig{4, 4096});
  const TaskGraph g = make_cholesky(6, 3);

  std::vector<ScheduleService::Future> futures;
  futures.reserve(kCopies);
  for (int i = 0; i < kCopies; ++i) {
    futures.push_back(service.submit(request_for(g, "streaming-rlx", 16)).future);
  }
  const ScheduleService::ResultPtr first = futures.front().get();
  for (auto& f : futures) {
    if (f.valid()) EXPECT_EQ(f.get().get(), first.get());
  }
  service.wait_idle();

  // Single-flight: exactly one schedule computed; every other submission was
  // a cache hit (fast path or worker) or joined the in-flight computation.
  const ScheduleService::Stats stats = service.stats();
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits + stats.cache.races, static_cast<std::uint64_t>(kCopies - 1));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kCopies));
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ScheduleService, SweepAcrossWorkersMatchesDirect) {
  ScheduleService service(ServiceConfig{4, 1 << 16});
  struct Case {
    TaskGraph graph;
    std::int64_t pes;
  };
  std::vector<Case> cases;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    cases.push_back({make_fft(16, seed), 24});
    cases.push_back({make_gaussian_elimination(8, seed), 16});
    cases.push_back({make_chain(8, seed), 4});
  }

  std::vector<ScheduleService::Future> futures;
  futures.reserve(cases.size());
  for (const Case& c : cases) {
    futures.push_back(service.submit(request_for(c.graph, "streaming-rlx", c.pes)).future);
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto result = futures[i].get();
    const ScheduleResult direct =
        schedule_by_name("streaming-rlx", cases[i].graph, machine_with(cases[i].pes));
    EXPECT_EQ(result->makespan, direct.makespan) << "case " << i;
  }
  EXPECT_EQ(service.stats().cache.misses, cases.size());
}

TEST(ScheduleService, PropagatesSchedulerErrorsAndStaysHealthy) {
  ScheduleService service(ServiceConfig{2, 4096});
  const TaskGraph g = testing::figure8_graph();

  auto bad = service.submit(request_for(g, "no-such-scheduler", 8)).future;
  EXPECT_THROW((void)bad.get(), std::invalid_argument);

  // The failure is accounted and the service keeps serving.
  service.wait_idle();
  EXPECT_EQ(service.stats().failed, 1u);
  const auto good = service.submit(request_for(g, "streaming-rlx", 8)).future.get();
  EXPECT_GT(good->makespan, 0);
}

TEST(ScheduleService, FailedComputationIsRetriedNotCached) {
  ScheduleService service(ServiceConfig{2, 4096});
  const TaskGraph g = testing::figure9_graph1();
  EXPECT_THROW((void)service.submit(request_for(g, "no-such-scheduler", 8)).future.get(),
               std::invalid_argument);
  EXPECT_THROW((void)service.submit(request_for(g, "no-such-scheduler", 8)).future.get(),
               std::invalid_argument);
  service.wait_idle();
  // Both submissions actually attempted the computation: a failure must not
  // poison the cache.
  EXPECT_EQ(service.stats().cache.misses, 2u);
  EXPECT_EQ(service.cache().size(), 0u);
}

TEST(ScheduleService, WaitIdleDrainsEverything) {
  ScheduleService service(ServiceConfig{3, 1 << 16});
  constexpr int kJobs = 30;
  std::vector<ScheduleService::Future> futures;
  futures.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    futures.push_back(
        service
            .submit(request_for(make_chain(8, static_cast<std::uint64_t>(i)), "streaming-rlx",
                                4))
            .future);
  }
  service.wait_idle();
  const ScheduleService::Stats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kJobs));
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_GT(f.get()->makespan, 0);
  }
}

TEST(ScheduleService, ShutdownDrainsQueuedJobsAndRejectsNewOnes) {
  std::vector<ScheduleService::Future> futures;
  ScheduleService service(ServiceConfig{1, 4096});
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service
                          .submit(request_for(make_fft(8, static_cast<std::uint64_t>(i)),
                                              "streaming-rlx", 8))
                          .future);
  }
  service.shutdown();
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_GT(f.get()->makespan, 0) << "queued jobs must be drained, not abandoned";
  }
  EXPECT_THROW((void)service.submit(request_for(make_chain(4, 1), "streaming-rlx", 4)),
               std::runtime_error);
}

TEST(ScheduleService, SimRequestsCacheSeparatelyFromPlain) {
  // Presence of `sim` is part of the request identity: a simulated and a
  // plain request for the same scenario must not share a cache entry.
  ScheduleService service(ServiceConfig{2, 4096});
  ScheduleRequest plain = request_for(testing::figure8_graph(), "streaming-rlx", 8);
  ScheduleRequest simulated = plain;
  simulated.sim = SimOptions{};

  EXPECT_NE(plain.key(), simulated.key());
  const auto plain_result = service.submit(std::move(plain)).future.get();
  const auto sim_result = service.submit(std::move(simulated)).future.get();
  EXPECT_FALSE(plain_result->sim.has_value());
  ASSERT_TRUE(sim_result->sim.has_value());
  EXPECT_NE(plain_result.get(), sim_result.get());
  service.wait_idle();
  EXPECT_EQ(service.stats().simulated, 1u);
}

TEST(ScheduleService, StatsJsonCarriesCacheWeight) {
  ScheduleService service(ServiceConfig{2, 4096});
  const TaskGraph g = testing::figure8_graph();
  (void)service.submit(request_for(g, "streaming-rlx", 8)).future.get();
  service.wait_idle();
  EXPECT_EQ(service.cache().total_weight(), g.node_count());
  const std::string json = service.stats_json();
  EXPECT_NE(json.find("\"cache_weight\": " + std::to_string(g.node_count())),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"cache_evicted_weight\": 0"), std::string::npos) << json;
}

TEST(ScheduleService, DefaultsToHardwareConcurrency) {
  ScheduleService service;
  EXPECT_GE(service.worker_count(), 1u);
}

}  // namespace
}  // namespace sts
