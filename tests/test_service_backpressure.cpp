// Deterministic backpressure harness for ScheduleService admission control:
// a latch-gated scheduler (registered test-only through SchedulerRegistry)
// parks the single worker inside a compute, so the shard queue can be filled
// to its configured depth limit without racing the drain. Every scenario the
// paper pipeline would schedule normally once the gate opens. All
// submissions are ScheduleRequest envelopes; AdmissionPolicy::kReject is
// the non-blocking admission path.

#include "service/schedule_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/passes.hpp"
#include "pipeline/registry.hpp"
#include "service/request.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

constexpr char kGatedName[] = "test-gated-list";

/// Latch shared between the test thread and the gated pipelines: pipelines
/// announce arrival and block until release(). The wait is bounded (10s) so
/// a failing assertion can never wedge the service destructor into a
/// never-draining shutdown; in a passing run the gate is always released
/// explicitly.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  int arrived = 0;
  /// Node counts of the graphs entering the gate, in execution order (the
  /// single worker runs jobs sequentially, so this observes queue order).
  std::vector<std::size_t> execution_order;

  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }

  /// Blocks until `n` pipelines have entered the gate pass.
  void wait_arrived(int n) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return arrived >= n; });
  }
};

/// Pipeline pass that parks inside run() until the gate opens.
class GatePass final : public Pass {
 public:
  explicit GatePass(Gate* gate) : gate_(gate) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "test-gate"; }
  void run(ScheduleContext& ctx) const override {
    std::unique_lock<std::mutex> lock(gate_->mutex);
    ++gate_->arrived;
    gate_->execution_order.push_back(ctx.require_graph().node_count());
    gate_->cv.notify_all();
    gate_->cv.wait_for(lock, std::chrono::seconds(10), [&] { return gate_->open; });
  }

 private:
  Gate* gate_;
};

/// A list scheduler whose pipeline blocks on the gate before scheduling.
class GatedScheduler final : public Scheduler {
 public:
  explicit GatedScheduler(Gate* gate) : gate_(gate) {}
  [[nodiscard]] std::string_view name() const noexcept override { return kGatedName; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "latch-gated list scheduler (test only)";
  }
  [[nodiscard]] Pipeline build_pipeline(const MachineConfig&) const override {
    Pipeline pipeline;
    pipeline.emplace<GatePass>(gate_);
    pipeline.emplace<ListSchedulePass>();
    pipeline.emplace<MetricsPass>();
    return pipeline;
  }

 private:
  Gate* gate_;
};

/// Registers the gated scheduler for the lifetime of a test.
struct GatedRegistration {
  explicit GatedRegistration(Gate* gate) {
    SchedulerRegistry::instance().add(kGatedName,
                                      [gate] { return std::make_unique<GatedScheduler>(gate); });
  }
  ~GatedRegistration() { SchedulerRegistry::instance().remove(kGatedName); }
};

/// Envelope for a gated chain scenario: chains differ by task count and seed
/// so nothing short-circuits through the cache.
ScheduleRequest gated_chain(int tasks, std::uint64_t seed,
                            AdmissionPolicy admission = AdmissionPolicy::kBlock,
                            std::int32_t priority = 0) {
  ScheduleRequest request;
  request.graph = make_chain(tasks, seed);
  request.scheduler = kGatedName;
  request.machine.num_pes = 4;
  request.admission = admission;
  request.priority = priority;
  return request;
}

/// One worker (= one shard) parked in the gate on job 0, with the two-slot
/// queue filled by jobs 1 and 2: the deterministic full-shard state every
/// test below starts from.
struct FullShardFixture {
  Gate gate;
  GatedRegistration registration{&gate};
  ScheduleService service;
  std::vector<ScheduleService::Future> futures;

  explicit FullShardFixture(std::size_t queue_depth = 2)
      : service(ServiceConfig{1, 4096, queue_depth}) {
    futures.push_back(service.submit(gated_chain(6, 0)).future);
    gate.wait_arrived(1);  // worker holds job 0 inside the gated compute
    futures.push_back(service.submit(gated_chain(6, 1)).future);
    futures.push_back(service.submit(gated_chain(6, 2)).future);
  }
};

TEST(ServiceBackpressure, RejectPolicyRefusesAtDepthLimitWithAccurateDepth) {
  FullShardFixture fix(2);

  ScheduleService::Admission refused =
      fix.service.submit(gated_chain(6, 3, AdmissionPolicy::kReject));
  ASSERT_FALSE(refused.accepted());
  EXPECT_FALSE(refused.future.valid());
  EXPECT_EQ(refused.rejected->shard, 0u);
  EXPECT_EQ(refused.rejected->depth, 2u) << "rejection must report the observed queue depth";
  EXPECT_EQ(refused.rejected->limit, 2u);

  // The unified response envelope renders the refusal.
  const ScheduleResponse response = refused.wait();
  EXPECT_EQ(response.status, ScheduleResponse::Status::kRejected);
  EXPECT_NE(response.to_json().find("\"status\": \"rejected\""), std::string::npos);

  ScheduleService::Stats stats = fix.service.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.submitted, 4u) << "rejected attempts count as submissions";

  fix.gate.release();
  fix.service.wait_idle();
  for (auto& f : fix.futures) EXPECT_GT(f.get()->makespan, 0);

  stats = fix.service.stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected)
      << "drain invariant: every submission either completed or was rejected";
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.failed, 0u);
  ASSERT_EQ(stats.shard_max_depth.size(), 1u);
  EXPECT_EQ(stats.shard_max_depth[0], 2u) << "queue never grew past the configured depth";
}

TEST(ServiceBackpressure, BlockedSubmitWakesWhenWorkerDrains) {
  FullShardFixture fix(2);

  std::atomic<bool> admitted{false};
  ScheduleService::Future blocked_future;
  std::thread submitter([&] {
    // The shard is full: this kBlock submit must block until the worker pops.
    blocked_future = fix.service.submit(gated_chain(6, 3)).future;
    admitted.store(true, std::memory_order_release);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load(std::memory_order_acquire))
      << "submit into a full shard returned without waiting for space";

  fix.gate.release();
  submitter.join();  // wakes on drain; a missed wakeup hangs here and trips the ctest timeout
  EXPECT_TRUE(admitted.load(std::memory_order_acquire));

  fix.service.wait_idle();
  EXPECT_GT(blocked_future.get()->makespan, 0);
  for (auto& f : fix.futures) EXPECT_GT(f.get()->makespan, 0);

  const ScheduleService::Stats stats = fix.service.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.rejected, 0u);
  ASSERT_EQ(stats.shard_max_depth.size(), 1u);
  EXPECT_LE(stats.shard_max_depth[0], 2u);
}

TEST(ServiceBackpressure, CachedScenarioBypassesFullQueue) {
  Gate gate;
  GatedRegistration registration(&gate);
  ScheduleService service(ServiceConfig{1, 4096, 2});

  // Warm the cache while the worker is free (ungated scheduler).
  ScheduleRequest warm_request = gated_chain(6, 9);
  warm_request.scheduler = "list";
  const auto warm = service.submit(warm_request).future.get();

  // Park the worker and fill the queue.
  std::vector<ScheduleService::Future> futures;
  futures.push_back(service.submit(gated_chain(6, 0)).future);
  gate.wait_arrived(1);
  futures.push_back(service.submit(gated_chain(6, 1)).future);
  futures.push_back(service.submit(gated_chain(6, 2)).future);

  // The cached scenario is admitted (and already resolved) despite the full
  // shard: admission control never refuses a cached answer.
  ScheduleRequest cached_request = gated_chain(6, 9, AdmissionPolicy::kReject);
  cached_request.scheduler = "list";
  ScheduleService::Admission cached = service.submit(std::move(cached_request));
  ASSERT_TRUE(cached.accepted());
  ASSERT_EQ(cached.future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(cached.future.get().get(), warm.get()) << "same immutable result object";
  EXPECT_EQ(service.stats().fast_path_hits, 1u);
  EXPECT_EQ(service.stats().rejected, 0u);

  gate.release();
  service.wait_idle();
  for (auto& f : futures) EXPECT_GT(f.get()->makespan, 0);
}

TEST(ServiceBackpressure, PriorityRequestJumpsTheQueue) {
  Gate gate;
  GatedRegistration registration(&gate);
  ScheduleService service(ServiceConfig{1, 4096});  // unbounded, one worker

  // Park the worker on a 6-node chain, queue a 7-node chain normally, then
  // a 5-node chain with priority: the priority job must run before the
  // earlier-submitted normal job (make_chain(n) has exactly n nodes).
  std::vector<ScheduleService::Future> futures;
  futures.push_back(service.submit(gated_chain(6, 0)).future);
  gate.wait_arrived(1);
  futures.push_back(service.submit(gated_chain(7, 1)).future);
  futures.push_back(service.submit(gated_chain(5, 2, AdmissionPolicy::kBlock, 1)).future);

  gate.release();
  service.wait_idle();
  for (auto& f : futures) EXPECT_GT(f.get()->makespan, 0);
  const std::vector<std::size_t> expected{6, 5, 7};
  EXPECT_EQ(gate.execution_order, expected)
      << "priority submission must run ahead of the earlier normal one";
}

TEST(ServiceBackpressure, ShutdownUnblocksBackpressuredSubmitter) {
  FullShardFixture fix(2);

  std::atomic<bool> threw{false};
  std::thread submitter([&] {
    try {
      (void)fix.service.submit(gated_chain(6, 3));
    } catch (const std::runtime_error&) {
      threw.store(true, std::memory_order_release);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // shutdown() flips stopping_ and notifies the space CVs before joining, so
  // the blocked submitter must wake and throw instead of waiting forever.
  // Release the gate from a helper thread so shutdown's drain can finish.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    fix.gate.release();
  });
  fix.service.shutdown();
  submitter.join();
  releaser.join();
  EXPECT_TRUE(threw.load(std::memory_order_acquire));

  // The queued jobs were drained, not abandoned, and the rolled-back
  // submission keeps the accounting balanced.
  for (auto& f : fix.futures) EXPECT_GT(f.get()->makespan, 0);
  const ScheduleService::Stats stats = fix.service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected);
}

TEST(ServiceBackpressure, UnboundedServiceNeverRejects) {
  Gate gate;
  GatedRegistration registration(&gate);
  ScheduleService service(ServiceConfig{1, 4096});  // queue_depth = 0: unbounded
  EXPECT_EQ(service.queue_depth_limit(), 0u);

  std::vector<ScheduleService::Future> futures;
  futures.push_back(service.submit(gated_chain(6, 0)).future);
  gate.wait_arrived(1);
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    ScheduleService::Admission a =
        service.submit(gated_chain(6, seed, AdmissionPolicy::kReject));
    ASSERT_TRUE(a.accepted()) << "unbounded queues must admit everything";
    futures.push_back(std::move(a.future));
  }
  gate.release();
  service.wait_idle();
  for (auto& f : futures) EXPECT_GT(f.get()->makespan, 0);
  const ScheduleService::Stats stats = service.stats();
  EXPECT_EQ(stats.rejected, 0u);
  ASSERT_EQ(stats.shard_max_depth.size(), 1u);
  EXPECT_EQ(stats.shard_max_depth[0], 16u);
}

TEST(ServiceBackpressure, StatsJsonReportsAdmissionFields) {
  FullShardFixture fix(2);
  ScheduleService::Admission refused =
      fix.service.submit(gated_chain(6, 3, AdmissionPolicy::kReject));
  ASSERT_FALSE(refused.accepted());
  fix.gate.release();
  fix.service.wait_idle();

  const std::string json = fix.service.stats_json();
  EXPECT_NE(json.find("\"submitted\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"completed\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rejected\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue_depth_limit\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_queue_depth\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard_max_depth\": [2]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_misses\": 3"), std::string::npos) << json;
}

}  // namespace
}  // namespace sts
