// Coverage for the deprecated positional submit shims: they must keep
// compiling and keep behaving exactly like the ScheduleRequest envelope they
// forward to (same cache entries, same admission semantics) for one release.
// This is the only translation unit allowed to call them, so the deprecation
// diagnostic is silenced here and nowhere else (the build runs with
// -Werror=deprecated-declarations).

#include "service/schedule_service.hpp"

#include <gtest/gtest.h>

#include <future>
#include <utility>

#include "paper_examples.hpp"
#include "service/request.hpp"
#include "workloads/synthetic.hpp"

#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace sts {
namespace {

MachineConfig machine_with(std::int64_t pes) {
  MachineConfig machine;
  machine.num_pes = pes;
  return machine;
}

TEST(ServiceShims, PositionalSubmitSharesTheEnvelopeCacheEntry) {
  ScheduleService service(ServiceConfig{2, 4096});
  const TaskGraph g = testing::figure8_graph();

  const auto via_shim = service.submit(g, "streaming-rlx", machine_with(8)).get();

  ScheduleRequest request;
  request.graph = g;
  request.scheduler = "streaming-rlx";
  request.machine.num_pes = 8;
  const auto via_envelope = service.submit(std::move(request)).future.get();

  EXPECT_EQ(via_shim.get(), via_envelope.get())
      << "the shim must build the identical request key";
  service.wait_idle();
  EXPECT_EQ(service.stats().cache.misses, 1u);
}

TEST(ServiceShims, TrySubmitMapsToRejectPolicy) {
  ScheduleService service(ServiceConfig{2, 4096});  // unbounded: always accepted
  ScheduleService::Admission admission =
      service.try_submit(make_chain(6, 1), "streaming-rlx", machine_with(4));
  ASSERT_TRUE(admission.accepted());
  EXPECT_GT(admission.future.get()->makespan, 0);
}

TEST(ServiceShims, SubmitSimulatedMapsToSimRequest) {
  ScheduleService service(ServiceConfig{2, 4096});
  const TaskGraph g = testing::figure8_graph();
  SimOptions options;
  options.engine = SimEngine::kBulkAdvance;

  const auto via_shim = service.submit_simulated(g, "streaming-rlx", machine_with(8),
                                                 options).get();
  ASSERT_TRUE(via_shim->sim.has_value());

  ScheduleRequest request;
  request.graph = g;
  request.scheduler = "streaming-rlx";
  request.machine.num_pes = 8;
  request.sim = options;
  const auto via_envelope = service.submit(std::move(request)).future.get();
  EXPECT_EQ(via_shim.get(), via_envelope.get())
      << "simulated shim and sim-carrying envelope share one cache entry";
}

}  // namespace
}  // namespace sts
