// Simulated-request oracle tests: a ScheduleRequest with `sim` set chains
// the async simulation offload, which must produce SimResults bit-identical
// to the synchronous schedule + simulate_streaming path, for both engines,
// and cache simulated results under their own (sim-options-extended) keys.

#include "service/schedule_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <optional>
#include <stdexcept>
#include <vector>

#include "paper_examples.hpp"
#include "pipeline/registry.hpp"
#include "service/request.hpp"
#include "sim/dataflow_sim.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

MachineConfig machine_with(std::int64_t pes) {
  MachineConfig machine;
  machine.num_pes = pes;
  return machine;
}

ScheduleRequest request_for(const TaskGraph& graph, std::string scheduler, std::int64_t pes,
                            std::optional<SimOptions> sim = std::nullopt) {
  ScheduleRequest request;
  request.graph = graph;
  request.scheduler = std::move(scheduler);
  request.machine.num_pes = pes;
  request.sim = sim;
  return request;
}

/// The synchronous reference: schedule, then simulate the streaming schedule.
SimResult oracle_sim(const TaskGraph& graph, const std::string& scheduler,
                     const MachineConfig& machine, SimOptions options) {
  const ScheduleResult direct = schedule_by_name(scheduler, graph, machine);
  return simulate_streaming(graph, *direct.streaming, *direct.buffers, options);
}

/// Field-by-field bit-identity of two simulation outcomes.
void expect_sim_identical(const SimResult& got, const SimResult& want) {
  EXPECT_EQ(got.deadlocked, want.deadlocked);
  EXPECT_EQ(got.tick_limit_reached, want.tick_limit_reached);
  EXPECT_EQ(got.makespan, want.makespan);
  EXPECT_EQ(got.finish, want.finish);
  EXPECT_EQ(got.first_out, want.first_out);
  EXPECT_EQ(got.stuck, want.stuck);
  EXPECT_EQ(got.ticks_executed, want.ticks_executed);
  EXPECT_EQ(got.engine_used, want.engine_used);
  EXPECT_EQ(got.live_ticks, want.live_ticks);
  EXPECT_EQ(got.bulk_jumps, want.bulk_jumps);
}

std::vector<TaskGraph> oracle_graphs() {
  std::vector<TaskGraph> graphs;
  graphs.push_back(testing::figure8_graph());
  graphs.push_back(testing::figure9_graph1());
  graphs.push_back(testing::figure9_graph2());
  graphs.push_back(make_fft(16, 7));
  graphs.push_back(make_gaussian_elimination(8, 3));
  return graphs;
}

TEST(ServiceSimulation, MatchesSynchronousOracleUnderBothEngines) {
  for (const SimEngine engine : {SimEngine::kBulkAdvance, SimEngine::kTickAccurate}) {
    ScheduleService service(ServiceConfig{2, 4096});
    SimOptions options;
    options.engine = engine;
    std::size_t index = 0;
    for (const TaskGraph& graph : oracle_graphs()) {
      const auto result =
          service.submit(request_for(graph, "streaming-rlx", 8, options)).future.get();
      ASSERT_TRUE(result->sim.has_value()) << "engine " << to_string(engine);
      const ScheduleResult direct = schedule_by_name("streaming-rlx", graph, machine_with(8));
      EXPECT_EQ(result->makespan, direct.makespan) << "graph " << index;
      SCOPED_TRACE("engine " + std::string(to_string(engine)) + ", graph " +
                   std::to_string(index));
      expect_sim_identical(*result->sim,
                           oracle_sim(graph, "streaming-rlx", machine_with(8), options));
      EXPECT_FALSE(result->sim->deadlocked);
      ++index;
    }
  }
}

TEST(ServiceSimulation, RepeatedSubmissionsHitTheCache) {
  ScheduleService service(ServiceConfig{2, 4096});
  const TaskGraph graph = testing::figure8_graph();
  SimOptions options;
  options.engine = SimEngine::kBulkAdvance;

  const auto first =
      service.submit(request_for(graph, "streaming-rlx", 8, options)).future.get();
  auto second_future = service.submit(request_for(graph, "streaming-rlx", 8, options)).future;
  // A cached simulated result resolves synchronously inside submit.
  EXPECT_EQ(second_future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(second_future.get().get(), first.get()) << "same immutable result object";

  service.wait_idle();
  const ScheduleService::Stats stats = service.stats();
  EXPECT_EQ(stats.cache.misses, 1u) << "the schedule+simulation ran exactly once";
  EXPECT_EQ(stats.fast_path_hits, 1u);
  EXPECT_EQ(stats.simulated, 2u);
}

TEST(ServiceSimulation, DistinctSimOptionsAreDistinctCacheEntries) {
  ScheduleService service(ServiceConfig{2, 4096});
  const TaskGraph graph = testing::figure9_graph1();

  SimOptions bulk;
  bulk.engine = SimEngine::kBulkAdvance;
  SimOptions tick;
  tick.engine = SimEngine::kTickAccurate;

  const auto bulk_result =
      service.submit(request_for(graph, "streaming-rlx", 8, bulk)).future.get();
  const auto tick_result =
      service.submit(request_for(graph, "streaming-rlx", 8, tick)).future.get();
  service.wait_idle();

  EXPECT_NE(bulk_result.get(), tick_result.get()) << "engines cache under distinct keys";
  EXPECT_EQ(service.stats().cache.misses, 2u);
  // The engines disagree on nothing observable (the differential guarantee).
  EXPECT_EQ(bulk_result->sim->makespan, tick_result->sim->makespan);
  EXPECT_EQ(bulk_result->sim->finish, tick_result->sim->finish);
  EXPECT_EQ(bulk_result->sim->engine_used, SimEngine::kBulkAdvance);
  EXPECT_EQ(tick_result->sim->engine_used, SimEngine::kTickAccurate);
}

TEST(ServiceSimulation, PlainAndSimulatedSubmissionsDoNotCollide) {
  ScheduleService service(ServiceConfig{2, 4096});
  const TaskGraph graph = testing::figure8_graph();

  const auto plain = service.submit(request_for(graph, "streaming-rlx", 8)).future.get();
  const auto simulated =
      service.submit(request_for(graph, "streaming-rlx", 8, SimOptions{})).future.get();
  service.wait_idle();

  EXPECT_FALSE(plain->sim.has_value());
  EXPECT_TRUE(simulated->sim.has_value());
  EXPECT_NE(plain.get(), simulated.get());
  EXPECT_EQ(service.stats().cache.misses, 2u);
  EXPECT_EQ(service.stats().simulated, 1u);
}

TEST(ServiceSimulation, NonStreamingSchedulerFailsTheFutureAndIsNotCached) {
  ScheduleService service(ServiceConfig{2, 4096});
  const TaskGraph graph = testing::figure8_graph();

  EXPECT_THROW((void)service.submit(request_for(graph, "list", 8, SimOptions{})).future.get(),
               std::invalid_argument);
  service.wait_idle();
  EXPECT_EQ(service.stats().failed, 1u);
  EXPECT_EQ(service.cache().size(), 0u) << "a failed simulated compute must not be cached";

  // The service stays healthy and the same scenario still works simulated
  // with a streaming scheduler.
  const auto good =
      service.submit(request_for(graph, "streaming-rlx", 8, SimOptions{})).future.get();
  EXPECT_TRUE(good->sim.has_value());
  EXPECT_GT(good->sim->makespan, 0);
}

TEST(ServiceSimulation, SimulationTimingIsRecordedAlongsideScheduleTimings) {
  ScheduleService service(ServiceConfig{1, 4096});
  const auto result =
      service.submit(request_for(testing::figure8_graph(), "streaming-rlx", 8, SimOptions{}))
          .future.get();
  bool saw_simulation_pass = false;
  for (const PassTiming& timing : result->timings) {
    if (timing.pass == "simulation") saw_simulation_pass = true;
  }
  EXPECT_TRUE(saw_simulation_pass)
      << "the worker-side SimulationPass must record its timing like any pipeline pass";
}

}  // namespace
}  // namespace sts
