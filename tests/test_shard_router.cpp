// ShardRouter coverage: deterministic consistent-hash routing, aggregate
// stats invariants across backends, the consistent-hashing rebalance
// property (growing the pool only moves keys to the new backend; shrinking
// only moves keys off the retired one), and backend-annotated rejections
// (made deterministic with a latch-gated scheduler that parks a backend's
// single worker).

#include "service/shard_router.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "pipeline/passes.hpp"
#include "pipeline/registry.hpp"
#include "service/request.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

ScheduleRequest chain_request(int tasks, std::uint64_t seed, std::int64_t pes = 4) {
  ScheduleRequest request;
  request.graph = make_chain(tasks, seed);
  request.scheduler = "streaming-rlx";
  request.machine.num_pes = pes;
  return request;
}

RouterConfig router_config(std::size_t backends, std::size_t workers_each = 1) {
  RouterConfig config;
  config.num_backends = backends;
  config.backend.num_workers = workers_each;
  config.backend.cache_capacity = 1 << 16;
  return config;
}

TEST(ShardRouter, RejectsDegenerateConfigs) {
  RouterConfig zero_backends = router_config(1);
  zero_backends.num_backends = 0;
  EXPECT_THROW(ShardRouter{zero_backends}, std::invalid_argument);
  RouterConfig zero_vnodes = router_config(1);
  zero_vnodes.virtual_nodes = 0;
  EXPECT_THROW(ShardRouter{zero_vnodes}, std::invalid_argument);
  ShardRouter router(router_config(1));
  EXPECT_THROW(router.set_backend_count(0), std::invalid_argument);
}

TEST(ShardRouter, RoutingIsDeterministicAndCoversAllBackends) {
  ShardRouter router(router_config(4));
  ASSERT_EQ(router.backend_count(), 4u);

  std::set<std::size_t> used;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const ScheduleRequest request = chain_request(6, seed);
    const std::size_t backend = router.backend_for(request);
    ASSERT_LT(backend, 4u);
    used.insert(backend);
    // Same request (and an identity-equal copy) always routes identically.
    EXPECT_EQ(router.backend_for(request), backend);
    EXPECT_EQ(router.backend_for(chain_request(6, seed)), backend);
    EXPECT_EQ(router.backend_for_key(request.key()), backend);
  }
  EXPECT_EQ(used.size(), 4u) << "64 random keys must touch every backend";
}

TEST(ShardRouter, SubmitLandsOnTheRoutedBackend) {
  ShardRouter router(router_config(4));
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ScheduleRequest request = chain_request(6, seed);
    const std::size_t expected = router.backend_for(request);
    const std::string key = request.key();
    const auto result = router.submit(std::move(request)).future.get();
    EXPECT_GT(result->makespan, 0);
    router.wait_idle();
    EXPECT_TRUE(router.local_backend(expected).cache().contains(key))
        << "seed " << seed << ": result cached on a different backend than routed";
  }
}

TEST(ShardRouter, AggregateStatsSumOverBackends) {
  constexpr std::uint64_t kScenarios = 24;
  ShardRouter router(router_config(4));
  std::vector<ScheduleService::Future> futures;
  for (std::uint64_t seed = 1; seed <= kScenarios; ++seed) {
    futures.push_back(router.submit(chain_request(6, seed)).future);
    // Every scenario twice: the duplicate hits its backend's cache.
    futures.push_back(router.submit(chain_request(6, seed)).future);
  }
  for (auto& f : futures) EXPECT_GT(f.get()->makespan, 0);
  router.wait_idle();

  const ShardRouter::Stats stats = router.stats();
  ASSERT_EQ(stats.backends.size(), 4u);
  ScheduleService::Stats manual;
  for (const ScheduleService::Stats& backend : stats.backends) {
    manual.submitted += backend.submitted;
    manual.completed += backend.completed;
    manual.failed += backend.failed;
    manual.cache.misses += backend.cache.misses;
    manual.cache.hits += backend.cache.hits;
    manual.cache.races += backend.cache.races;
  }
  EXPECT_EQ(stats.total.submitted, manual.submitted);
  EXPECT_EQ(stats.total.submitted, 2 * kScenarios);
  EXPECT_EQ(stats.total.completed, manual.completed);
  EXPECT_EQ(stats.total.failed, 0u);
  EXPECT_EQ(stats.total.cache.misses, kScenarios)
      << "each unique scenario schedules exactly once across the fleet";
  EXPECT_EQ(stats.total.cache.hits + stats.total.cache.races, kScenarios);

  const std::string json = router.stats_json();
  EXPECT_NE(json.find("\"backends\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"submitted\": " + std::to_string(2 * kScenarios)), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"per_backend\": [{"), std::string::npos) << json;
}

TEST(ShardRouter, GrowingThePoolOnlyMovesKeysToTheNewBackend) {
  ShardRouter before(router_config(3));
  ShardRouter after(router_config(4));

  std::size_t moved = 0;
  constexpr std::uint64_t kKeys = 200;
  for (std::uint64_t seed = 1; seed <= kKeys; ++seed) {
    const ScheduleRequest request = chain_request(6, seed);
    const std::size_t old_backend = before.backend_for(request);
    const std::size_t new_backend = after.backend_for(request);
    if (new_backend != old_backend) {
      EXPECT_EQ(new_backend, 3u)
          << "a key may only move to the backend that joined, never between survivors";
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u) << "the new backend must take over part of the key space";
  EXPECT_LT(moved, kKeys / 2)
      << "consistent hashing moves ~1/N of the keys, not a wholesale reshuffle";
}

TEST(ShardRouter, SetBackendCountRebalancesLive) {
  ShardRouter router(router_config(2));
  std::vector<std::size_t> before;
  constexpr std::uint64_t kKeys = 100;
  for (std::uint64_t seed = 1; seed <= kKeys; ++seed) {
    before.push_back(router.backend_for(chain_request(6, seed)));
  }

  router.set_backend_count(3);
  EXPECT_EQ(router.backend_count(), 3u);
  for (std::uint64_t seed = 1; seed <= kKeys; ++seed) {
    const std::size_t now = router.backend_for(chain_request(6, seed));
    if (now != before[seed - 1]) EXPECT_EQ(now, 2u);
  }

  // Shrinking back: only the retired backend's keys move (to survivors).
  router.set_backend_count(2);
  for (std::uint64_t seed = 1; seed <= kKeys; ++seed) {
    EXPECT_EQ(router.backend_for(chain_request(6, seed)), before[seed - 1])
        << "the ring of the surviving backends is unchanged";
  }
}

TEST(ShardRouter, RetiredBackendCountersFoldIntoTotals) {
  ShardRouter router(router_config(3));
  std::vector<ScheduleService::Future> futures;
  for (std::uint64_t seed = 1; seed <= 18; ++seed) {
    futures.push_back(router.submit(chain_request(6, seed)).future);
  }
  for (auto& f : futures) EXPECT_GT(f.get()->makespan, 0);
  router.wait_idle();
  const std::uint64_t submitted_before = router.stats().total.submitted;

  router.set_backend_count(1);  // drains + retires two backends
  EXPECT_EQ(router.stats().total.submitted, submitted_before)
      << "aggregate counters stay monotonic across retirement";

  // The shrunken router still serves.
  EXPECT_GT(router.submit(chain_request(6, 99)).future.get()->makespan, 0);
  router.wait_idle();
  EXPECT_EQ(router.stats().total.submitted, submitted_before + 1);
}

// ---------------------------------------------------------- rejected routing

constexpr char kRouterGatedName[] = "test-router-gated";

struct RouterGate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  int arrived = 0;

  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void wait_arrived(int n) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return arrived >= n; });
  }
};

class RouterGatePass final : public Pass {
 public:
  explicit RouterGatePass(RouterGate* gate) : gate_(gate) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "test-router-gate"; }
  void run(ScheduleContext&) const override {
    std::unique_lock<std::mutex> lock(gate_->mutex);
    ++gate_->arrived;
    gate_->cv.notify_all();
    gate_->cv.wait_for(lock, std::chrono::seconds(10), [&] { return gate_->open; });
  }

 private:
  RouterGate* gate_;
};

class RouterGatedScheduler final : public Scheduler {
 public:
  explicit RouterGatedScheduler(RouterGate* gate) : gate_(gate) {}
  [[nodiscard]] std::string_view name() const noexcept override { return kRouterGatedName; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "latch-gated list scheduler (router test only)";
  }
  [[nodiscard]] Pipeline build_pipeline(const MachineConfig&) const override {
    Pipeline pipeline;
    pipeline.emplace<RouterGatePass>(gate_);
    pipeline.emplace<ListSchedulePass>();
    pipeline.emplace<MetricsPass>();
    return pipeline;
  }

 private:
  RouterGate* gate_;
};

TEST(ShardRouter, RejectionCarriesTheBackendIndex) {
  RouterGate gate;
  SchedulerRegistry::instance().add(
      kRouterGatedName, [&gate] { return std::make_unique<RouterGatedScheduler>(&gate); });

  {
    RouterConfig config = router_config(3);
    config.backend.queue_depth = 1;
    ShardRouter router(config);

    // Find three gated scenarios that route to the same backend: one to park
    // its single worker, one to fill its one-slot queue, one to be refused.
    const auto gated = [](std::uint64_t seed) {
      ScheduleRequest request;
      request.graph = make_chain(6, seed);
      request.scheduler = kRouterGatedName;
      request.machine.num_pes = 4;
      return request;
    };
    const std::size_t target = router.backend_for(gated(1));
    std::vector<std::uint64_t> same_backend{1};
    for (std::uint64_t seed = 2; same_backend.size() < 3; ++seed) {
      if (router.backend_for(gated(seed)) == target) same_backend.push_back(seed);
    }

    std::vector<ScheduleService::Future> futures;
    futures.push_back(router.submit(gated(same_backend[0])).future);
    gate.wait_arrived(1);  // the backend's worker is parked
    futures.push_back(router.submit(gated(same_backend[1])).future);

    ScheduleRequest refused_request = gated(same_backend[2]);
    refused_request.admission = AdmissionPolicy::kReject;
    ScheduleService::Admission refused = router.submit(std::move(refused_request));
    ASSERT_FALSE(refused.accepted());
    EXPECT_EQ(refused.rejected->backend, target);
    EXPECT_EQ(refused.rejected->limit, 1u);
    const std::string json = refused.wait().to_json();
    EXPECT_NE(json.find("\"backend\": " + std::to_string(target)), std::string::npos) << json;

    gate.release();
    router.wait_idle();
    for (auto& f : futures) EXPECT_GT(f.get()->makespan, 0);
    EXPECT_EQ(router.stats().total.rejected, 1u);
  }
  SchedulerRegistry::instance().remove(kRouterGatedName);
}

}  // namespace
}  // namespace sts
