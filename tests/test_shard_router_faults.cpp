// ShardRouter fault injection through the ScheduleBackend seam: a mock
// backend (stand-in for a RemoteBackend whose sts-serve process misbehaves)
// fails and disconnects mid-request, and the router must surface typed
// errors, keep its aggregate counters monotonic, preserve server-recorded
// rejection detail, and never hang a drain on a dead backend.

#include "service/shard_router.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "service/request.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

ScheduleRequest chain_request(int tasks, std::uint64_t seed) {
  ScheduleRequest request;
  request.graph = make_chain(tasks, seed);
  request.scheduler = "streaming-rlx";
  request.machine.num_pes = 4;
  return request;
}

std::shared_ptr<const ScheduleResult> mock_result() {
  auto result = std::make_shared<ScheduleResult>();
  result->scheduler = "mock";
  result->makespan = 42;
  return result;
}

/// Seam test double: settles submissions from its own worker thread (like a
/// RemoteBackend's client pool), with fault injection. `disconnect()` makes
/// it behave like a backend whose server process vanished: queued requests
/// settle with a transport-style error, later submissions fail fast — and
/// nothing ever hangs.
class MockBackend : public ScheduleBackend {
 public:
  enum class Mode {
    kOk,           ///< settle with a result
    kReject,       ///< refuse synchronously at submit (full-shard style)
    kAsyncReject,  ///< settle with a server-recorded Rejected (remote style)
  };

  explicit MockBackend(std::size_t index)
      : index_(index), worker_([this] { run(); }) {}

  ~MockBackend() override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  void set_mode(Mode mode) {
    std::lock_guard<std::mutex> lock(mutex_);
    mode_ = mode;
  }

  void disconnect() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      disconnected_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] ServiceAdmission submit(ScheduleRequest request) override {
    (void)request.key();  // the router hashed it already; a real backend reads it too
    std::promise<Settled> promise;
    ServiceFuture future(promise.get_future());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.submitted;
      if (mode_ == Mode::kReject) {
        ++counters_.rejected;
        return ServiceAdmission{ServiceFuture(), Rejected{0, 3, 3, std::nullopt}};
      }
      if (disconnected_) {
        ++counters_.completed;
        ++counters_.failed;
        promise.set_value(transport_error());
        return ServiceAdmission{std::move(future), std::nullopt};
      }
      queue_.push_back(Pending{std::move(promise), mode_ == Mode::kAsyncReject});
      ++inflight_;
    }
    cv_.notify_one();
    return ServiceAdmission{std::move(future), std::nullopt};
  }

  void wait_idle() override {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return inflight_ == 0; });
  }

  [[nodiscard]] Snapshot stats_snapshot() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snapshot;
    snapshot.stats = counters_;
    snapshot.json = "{\"submitted\": " + std::to_string(counters_.submitted) +
                    ", \"completed\": " + std::to_string(counters_.completed) +
                    ", \"failed\": " + std::to_string(counters_.failed) +
                    ", \"rejected\": " + std::to_string(counters_.rejected) + "}";
    return snapshot;
  }

  [[nodiscard]] std::size_t worker_count() const noexcept override { return 1; }

 private:
  struct Pending {
    std::promise<Settled> promise;
    bool async_reject = false;
  };

  [[nodiscard]] Settled transport_error() const {
    return Settled{nullptr,
                   "mock backend " + std::to_string(index_) + ": connection reset mid-request",
                   false, std::nullopt};
  }

  void run() {
    for (;;) {
      Pending job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping, queue drained
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      Settled settled;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (disconnected_) {
          settled = transport_error();
          ++counters_.completed;
          ++counters_.failed;
        } else if (job.async_reject) {
          // What a remote server's 503 envelope decodes to: the server's own
          // shard/backend record, which the router must pass through intact.
          settled = Settled{nullptr, {}, false, Rejected{1, 2, 3, 99}};
          ++counters_.rejected;
        } else {
          settled = Settled{mock_result(), {}, false, std::nullopt};
          ++counters_.completed;
        }
        --inflight_;
      }
      job.promise.set_value(std::move(settled));
      idle_cv_.notify_all();
    }
  }

  const std::size_t index_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Pending> queue_;
  std::size_t inflight_ = 0;
  bool stop_ = false;
  bool disconnected_ = false;
  Mode mode_ = Mode::kOk;
  ServiceStats counters_;
  std::thread worker_;
};

/// Owns the mocks the router's factory hands out, for test-side control.
struct MockFleet {
  std::vector<std::shared_ptr<MockBackend>> mocks;

  [[nodiscard]] RouterConfig config(std::size_t backends) {
    RouterConfig config;
    config.num_backends = backends;
    config.backend_factory = [this](std::size_t index) -> std::shared_ptr<ScheduleBackend> {
      auto mock = std::make_shared<MockBackend>(index);
      mocks.push_back(mock);
      return mock;
    };
    return config;
  }
};

TEST(ShardRouterFaults, FactoryBuildsTheFleetInIndexOrder) {
  MockFleet fleet;
  ShardRouter router(fleet.config(3));
  ASSERT_EQ(fleet.mocks.size(), 3u);
  EXPECT_EQ(router.backend_count(), 3u);
  // Seam-only access works; the in-process downcast must refuse a mock.
  EXPECT_EQ(router.backend(0).worker_count(), 1u);
  EXPECT_THROW((void)router.local_backend(0), std::invalid_argument);
  // Results flow through the seam.
  const ScheduleResponse response = router.schedule(chain_request(8, 1));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.result->makespan, 42);
}

TEST(ShardRouterFaults, MidRequestDisconnectSurfacesTypedErrors) {
  MockFleet fleet;
  ShardRouter router(fleet.config(2));

  // In-flight when the backend dies: the settled future carries the error.
  std::vector<ServiceFuture> futures;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    futures.push_back(router.submit(chain_request(8, seed)).future);
  }
  for (const auto& mock : fleet.mocks) mock->disconnect();
  std::size_t errors = 0;
  for (ServiceFuture& future : futures) {
    const Settled settled = future.settled();
    if (!settled.error.empty()) {
      ++errors;
      EXPECT_NE(settled.error.find("connection reset"), std::string::npos);
    } else {
      EXPECT_NE(settled.result, nullptr);
    }
  }

  // Submitted after the death: still a typed error, fast, through the full
  // response envelope and through the throwing future contract.
  const ScheduleResponse response = router.schedule(chain_request(8, 100));
  EXPECT_EQ(response.status, ScheduleResponse::Status::kError);
  EXPECT_NE(response.error.find("mock backend"), std::string::npos);
  EXPECT_THROW((void)router.submit(chain_request(8, 101)).future.get(), std::runtime_error);
}

TEST(ShardRouterFaults, SyncRejectionGetsTheRoutedBackendIndex) {
  MockFleet fleet;
  ShardRouter router(fleet.config(3));
  for (const auto& mock : fleet.mocks) mock->set_mode(MockBackend::Mode::kReject);

  ScheduleRequest request = chain_request(8, 5);
  const std::size_t expected = router.backend_for(request);
  const ServiceAdmission admission = router.submit(std::move(request));
  ASSERT_FALSE(admission.accepted());
  ASSERT_TRUE(admission.rejected->backend.has_value());
  EXPECT_EQ(*admission.rejected->backend, expected);
  EXPECT_EQ(admission.rejected->limit, 3u);
}

TEST(ShardRouterFaults, AsyncRejectionKeepsTheServersOwnRecord) {
  MockFleet fleet;
  ShardRouter router(fleet.config(2));
  for (const auto& mock : fleet.mocks) mock->set_mode(MockBackend::Mode::kAsyncReject);

  const ScheduleResponse response = router.schedule(chain_request(8, 6));
  ASSERT_EQ(response.status, ScheduleResponse::Status::kRejected);
  // The router must not overwrite what the remote server recorded.
  EXPECT_EQ(response.rejected->shard, 1u);
  EXPECT_EQ(response.rejected->limit, 3u);
  ASSERT_TRUE(response.rejected->backend.has_value());
  EXPECT_EQ(*response.rejected->backend, 99u);
}

TEST(ShardRouterFaults, AggregateCountersStayMonotonicAcrossFaults) {
  MockFleet fleet;
  ShardRouter router(fleet.config(2));

  ServiceStats last;
  const auto sample = [&] {
    router.wait_idle();
    const ServiceStats now = router.stats().total;
    EXPECT_GE(now.submitted, last.submitted);
    EXPECT_GE(now.completed, last.completed);
    EXPECT_GE(now.failed, last.failed);
    EXPECT_GE(now.rejected, last.rejected);
    last = now;
  };

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    (void)router.schedule(chain_request(8, seed));
  }
  sample();
  for (const auto& mock : fleet.mocks) mock->set_mode(MockBackend::Mode::kReject);
  for (std::uint64_t seed = 9; seed <= 16; ++seed) {
    (void)router.schedule(chain_request(8, seed));
  }
  sample();
  for (const auto& mock : fleet.mocks) mock->set_mode(MockBackend::Mode::kOk);
  for (const auto& mock : fleet.mocks) mock->disconnect();
  for (std::uint64_t seed = 17; seed <= 24; ++seed) {
    (void)router.schedule(chain_request(8, seed));
  }
  sample();

  EXPECT_EQ(last.submitted, 24u);
  EXPECT_EQ(last.rejected, 8u);
  EXPECT_EQ(last.failed, 8u);
  EXPECT_EQ(last.submitted, last.completed + last.rejected);
}

TEST(ShardRouterFaults, DrainNeverHangsOnADeadBackend) {
  MockFleet fleet;
  ShardRouter router(fleet.config(4));

  std::vector<ServiceFuture> futures;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    futures.push_back(router.submit(chain_request(8, seed)).future);
    if (seed == 8) {
      fleet.mocks[0]->disconnect();  // two backends die mid-stream
      fleet.mocks[1]->disconnect();
    }
  }

  // The drain must complete even with half the fleet dead: dead backends
  // settle their in-flight futures with errors instead of holding them.
  auto drained = std::async(std::launch::async, [&] { router.wait_idle(); });
  ASSERT_EQ(drained.wait_for(std::chrono::seconds(30)), std::future_status::ready)
      << "wait_idle hung on a dead backend";
  for (ServiceFuture& future : futures) {
    const Settled settled = future.settled();
    EXPECT_TRUE(settled.result != nullptr || !settled.error.empty());
  }
}

}  // namespace
}  // namespace sts
