// Differential verification of the two simulation engines: on arbitrary
// random layered DAGs, paper examples, starved buffer plans (deadlocks), and
// truncated runs (tick limits), the bulk-advance engine must return results
// identical to the tick-accurate reference oracle -- makespan, per-node
// finish and first_out, deadlock status, stuck sets, and tick accounting.

#include <gtest/gtest.h>

#include <tuple>

#include "core/streaming_scheduler.hpp"
#include "fuzz_specs.hpp"
#include "paper_examples.hpp"
#include "sim/dataflow_sim.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

SimResult run_engine(const TaskGraph& g, const StreamingSchedule& s, const BufferPlan& b,
                     SimEngine engine, std::int64_t max_ticks = 50'000'000) {
  SimOptions opts;
  opts.engine = engine;
  opts.max_ticks = max_ticks;
  return simulate_streaming(g, s, b, opts);
}

void expect_identical(const SimResult& bulk, const SimResult& tick, const std::string& label) {
  EXPECT_EQ(bulk.deadlocked, tick.deadlocked) << label;
  EXPECT_EQ(bulk.tick_limit_reached, tick.tick_limit_reached) << label;
  EXPECT_EQ(bulk.makespan, tick.makespan) << label;
  EXPECT_EQ(bulk.ticks_executed, tick.ticks_executed) << label;
  ASSERT_EQ(bulk.finish.size(), tick.finish.size()) << label;
  for (std::size_t i = 0; i < tick.finish.size(); ++i) {
    EXPECT_EQ(bulk.finish[i], tick.finish[i]) << label << " finish of node " << i;
    EXPECT_EQ(bulk.first_out[i], tick.first_out[i]) << label << " first_out of node " << i;
  }
  EXPECT_EQ(bulk.stuck, tick.stuck) << label;
  EXPECT_EQ(bulk.engine_used, SimEngine::kBulkAdvance) << label;
  EXPECT_EQ(tick.engine_used, SimEngine::kTickAccurate) << label;
}

class EngineDifferential : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EngineDifferential, RandomLayeredGraphsAgree) {
  const auto [shape, seed] = GetParam();
  const TaskGraph g = make_random_layered(testing::fuzz_spec_for(shape), seed);
  const auto tasks = static_cast<std::int64_t>(g.node_count());
  for (const std::int64_t pes : {std::int64_t{3}, tasks / 2 + 1, tasks}) {
    for (const auto variant : {PartitionVariant::kLTS, PartitionVariant::kRLX}) {
      const auto r = schedule_streaming_graph(g, pes, variant);
      const std::string label = "shape " + std::to_string(shape) + " seed " +
                                std::to_string(seed) + " pes " + std::to_string(pes) +
                                " variant " + to_string(variant);

      // Healthy run with the Eq. 5 buffer plan.
      const SimResult bulk = run_engine(g, r.schedule, r.buffers, SimEngine::kBulkAdvance);
      const SimResult tick = run_engine(g, r.schedule, r.buffers, SimEngine::kTickAccurate);
      expect_identical(bulk, tick, label);

      // Starved single-slot FIFOs: deadlock paths and stuck sets must match.
      BufferPlan starved = r.buffers;
      for (ChannelPlan& c : starved.channels) c.capacity = 1;
      expect_identical(run_engine(g, r.schedule, starved, SimEngine::kBulkAdvance),
                       run_engine(g, r.schedule, starved, SimEngine::kTickAccurate),
                       label + " starved");

      // Truncated run: tick-limit semantics must match mid-stream.
      const std::int64_t limit = std::max<std::int64_t>(2, tick.makespan / 3);
      expect_identical(run_engine(g, r.schedule, r.buffers, SimEngine::kBulkAdvance, limit),
                       run_engine(g, r.schedule, r.buffers, SimEngine::kTickAccurate, limit),
                       label + " truncated");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, EngineDifferential,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u,
                                                              77u, 88u)));

TEST(EngineDifferentialPaper, PaperExamplesAgree) {
  const auto cases = {
      std::make_pair(testing::figure6_graph(), std::int64_t{2}),
      std::make_pair(testing::figure8_graph(), std::int64_t{5}),
      std::make_pair(testing::figure9_graph1(), std::int64_t{5}),
      std::make_pair(testing::figure9_graph2(), std::int64_t{6}),
      std::make_pair(testing::buffer_split_example(), std::int64_t{8}),
  };
  int i = 0;
  for (const auto& [g, pes] : cases) {
    const auto r = schedule_streaming_graph(g, pes, PartitionVariant::kRLX);
    expect_identical(run_engine(g, r.schedule, r.buffers, SimEngine::kBulkAdvance),
                     run_engine(g, r.schedule, r.buffers, SimEngine::kTickAccurate),
                     "paper case " + std::to_string(i++));
  }
}

TEST(EngineDifferentialPaper, PaperTopologiesAgree) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const TaskGraph fft = make_fft(16, seed);
    const auto r = schedule_streaming_graph(fft, 32, PartitionVariant::kRLX);
    expect_identical(run_engine(fft, r.schedule, r.buffers, SimEngine::kBulkAdvance),
                     run_engine(fft, r.schedule, r.buffers, SimEngine::kTickAccurate),
                     "fft seed " + std::to_string(seed));

    const TaskGraph chol = make_cholesky(6, seed);
    const auto rc = schedule_streaming_graph(chol, 16, PartitionVariant::kLTS);
    expect_identical(run_engine(chol, rc.schedule, rc.buffers, SimEngine::kBulkAdvance),
                     run_engine(chol, rc.schedule, rc.buffers, SimEngine::kTickAccurate),
                     "cholesky seed " + std::to_string(seed));
  }
}

TEST(EngineBulkAdvance, ActuallyJumpsOnLongStreams) {
  // A long elementwise chain settles into a period-1 steady state: the bulk
  // engine must cover almost the entire stream with jumps, not live ticks.
  TaskGraph g;
  const std::int64_t k = 1 << 16;
  NodeId prev = g.add_source(k, "s");
  for (int i = 1; i < 6; ++i) {
    const NodeId next = g.add_compute("c" + std::to_string(i));
    g.add_edge(prev, next, k);
    prev = next;
  }
  g.declare_output(prev, k);
  const auto r = schedule_streaming_graph(g, 8, PartitionVariant::kRLX);
  const SimResult bulk = run_engine(g, r.schedule, r.buffers, SimEngine::kBulkAdvance);
  const SimResult tick = run_engine(g, r.schedule, r.buffers, SimEngine::kTickAccurate);
  expect_identical(bulk, tick, "long chain");
  EXPECT_GT(bulk.bulk_jumps, 0) << "no period jump on a trivially periodic stream";
  EXPECT_LT(bulk.live_ticks, tick.ticks_executed / 100)
      << "bulk engine degenerated to tick stepping";
}

TEST(EngineBulkAdvance, AutoSelectsBulkUnlessTraceRequested) {
  const TaskGraph g = testing::figure8_graph();
  const auto r = schedule_streaming_graph(g, 5, PartitionVariant::kRLX);
  const SimResult sim = simulate_streaming(g, r.schedule, r.buffers);
  EXPECT_EQ(sim.engine_used, SimEngine::kBulkAdvance);

  SimOptions traced;
  traced.record_trace = true;
  const SimResult with_trace = simulate_streaming(g, r.schedule, r.buffers, traced);
  EXPECT_EQ(with_trace.engine_used, SimEngine::kTickAccurate);
  EXPECT_FALSE(with_trace.trace.empty());

  SimOptions forced;
  forced.record_trace = true;
  forced.engine = SimEngine::kBulkAdvance;
  EXPECT_EQ(simulate_streaming(g, r.schedule, r.buffers, forced).engine_used,
            SimEngine::kTickAccurate);
}

}  // namespace
}  // namespace sts
