#include "sim/dataflow_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/streaming_scheduler.hpp"
#include "paper_examples.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

StreamingSchedulerResult run_scheduler(const TaskGraph& g, std::int64_t pes,
                                       PartitionVariant variant = PartitionVariant::kRLX) {
  return schedule_streaming_graph(g, pes, variant);
}

TEST(Simulator, ElementwiseChainRateOne) {
  // A fully streaming chain must sustain one element per time unit with
  // capacity-1 FIFOs: makespan = k + hops.
  TaskGraph g;
  const std::int64_t k = 64;
  NodeId prev = g.add_source(k, "s");
  const int chain = 5;
  for (int i = 1; i < chain; ++i) {
    const NodeId next = g.add_compute("c" + std::to_string(i));
    g.add_edge(prev, next, k);
    prev = next;
  }
  g.declare_output(prev, k);
  const auto r = run_scheduler(g, 8);
  const SimResult sim = simulate_streaming(g, r.schedule, r.buffers);
  EXPECT_FALSE(sim.deadlocked);
  EXPECT_EQ(sim.makespan, k + chain - 1);
  EXPECT_EQ(sim.makespan, r.schedule.makespan);
}

TEST(Simulator, Figure6BackpressureThrottlesSource) {
  const TaskGraph g = testing::figure6_graph();
  const auto r = run_scheduler(g, 2);
  const SimResult sim = simulate_streaming(g, r.schedule, r.buffers);
  EXPECT_FALSE(sim.deadlocked);
  // The upsampler emits 32 elements, one per unit, starting at tick 2.
  EXPECT_EQ(sim.finish[1], r.schedule.at(1).last_out);
  EXPECT_EQ(sim.makespan, r.schedule.makespan);
}

TEST(Simulator, Figure8MatchesAnalyticSchedule) {
  const TaskGraph g = testing::figure8_graph();
  const auto r = run_scheduler(g, 5);
  const SimResult sim = simulate_streaming(g, r.schedule, r.buffers);
  EXPECT_FALSE(sim.deadlocked);
  EXPECT_EQ(sim.makespan, r.schedule.makespan);  // 34
}

TEST(Simulator, Figure9Graph1NoDeadlockWithComputedBuffers) {
  const TaskGraph g = testing::figure9_graph1();
  const auto r = run_scheduler(g, 5);
  const SimResult sim = simulate_streaming(g, r.schedule, r.buffers);
  EXPECT_FALSE(sim.deadlocked);
  // Eq. 5 + credit slack reproduces the schedule exactly (51).
  EXPECT_EQ(sim.makespan, r.schedule.makespan);
}

TEST(Simulator, Figure9Graph1DeadlocksWhenUnderProvisioned) {
  // Shrinking the 18-slot FIFO on edge (0,4) to 1 slot must deadlock: task 0
  // stalls on the full channel before the reducer chain gets enough data.
  const TaskGraph g = testing::figure9_graph1();
  const auto r = run_scheduler(g, 5);
  BufferPlan starved = r.buffers;
  for (ChannelPlan& c : starved.channels) c.capacity = 1;
  const SimResult sim = simulate_streaming(g, r.schedule, starved);
  EXPECT_TRUE(sim.deadlocked);
  EXPECT_FALSE(sim.stuck.empty());
}

TEST(Simulator, Figure9Graph2DeadlocksWhenUnderProvisioned) {
  const TaskGraph g = testing::figure9_graph2();
  const auto r = run_scheduler(g, 6);
  {
    const SimResult ok = simulate_streaming(g, r.schedule, r.buffers);
    EXPECT_FALSE(ok.deadlocked);
    EXPECT_EQ(ok.makespan, r.schedule.makespan);  // 66
  }
  BufferPlan starved = r.buffers;
  for (ChannelPlan& c : starved.channels) c.capacity = 1;
  const SimResult sim = simulate_streaming(g, r.schedule, starved);
  EXPECT_TRUE(sim.deadlocked);
}

TEST(Simulator, ExactBufferBoundaryIsTight) {
  // 1 slot on the (0,4) channel deadlocks; the Eq. 5 value (18) completes
  // within a one-unit credit stall; the allocated 19 slots are exact.
  const TaskGraph g = testing::figure9_graph1();
  const auto r = run_scheduler(g, 5);
  BufferPlan plan = r.buffers;
  for (ChannelPlan& c : plan.channels) {
    if (g.edge(c.edge).src == 0 && g.edge(c.edge).dst == 4) c.capacity = 1;
  }
  const SimResult starved = simulate_streaming(g, r.schedule, plan);
  EXPECT_TRUE(starved.deadlocked);
  for (ChannelPlan& c : plan.channels) {
    if (g.edge(c.edge).src == 0 && g.edge(c.edge).dst == 4) c.capacity = 18;
  }
  const SimResult tight = simulate_streaming(g, r.schedule, plan);
  EXPECT_FALSE(tight.deadlocked);
  EXPECT_NEAR(static_cast<double>(tight.makespan),
              static_cast<double>(r.schedule.makespan), 1.0);
  const SimResult exact = simulate_streaming(g, r.schedule, r.buffers);
  EXPECT_FALSE(exact.deadlocked);
  EXPECT_EQ(exact.makespan, r.schedule.makespan);
}

TEST(Simulator, BufferNodeDelaysConsumers) {
  const TaskGraph g = testing::buffer_split_example();
  const auto r = run_scheduler(g, 8);
  const SimResult sim = simulate_streaming(g, r.schedule, r.buffers);
  EXPECT_FALSE(sim.deadlocked);
  EXPECT_EQ(sim.makespan, r.schedule.makespan);
}

TEST(Simulator, MultiBlockBarriersRespected) {
  const TaskGraph g = testing::figure9_graph1();
  SpatialPartition p;
  p.block_of = {0, 0, 1, 1, 1};
  p.blocks = {{0, 1}, {2, 3, 4}};
  const StreamingSchedule sched = schedule_streaming(g, p);
  const BufferPlan plan = compute_buffer_plan(g, sched);
  const SimResult sim = simulate_streaming(g, sched, plan);
  EXPECT_FALSE(sim.deadlocked);
  // Block-1 tasks cannot act before block 0 completed.
  EXPECT_GT(sim.finish[2], sim.finish[1]);
  EXPECT_EQ(sim.makespan, sched.makespan);
}

TEST(Simulator, TickLimitReported) {
  const TaskGraph g = testing::figure8_graph();
  const auto r = run_scheduler(g, 5);
  SimOptions opts;
  opts.max_ticks = 3;
  const SimResult sim = simulate_streaming(g, r.schedule, r.buffers, opts);
  EXPECT_TRUE(sim.tick_limit_reached);
  EXPECT_FALSE(sim.deadlocked);
}

class SimulatorAgreementSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::int64_t>> {};

TEST_P(SimulatorAgreementSweep, AnalyticMakespanTracksSimulation) {
  const auto [seed, pes] = GetParam();
  const TaskGraph g = make_fft(8, seed);
  for (const auto variant : {PartitionVariant::kLTS, PartitionVariant::kRLX}) {
    const auto r = run_scheduler(g, pes, variant);
    const SimResult sim = simulate_streaming(g, r.schedule, r.buffers);
    ASSERT_FALSE(sim.deadlocked) << "seed " << seed << " pes " << pes;
    ASSERT_FALSE(sim.tick_limit_reached);
    const double err = std::abs(static_cast<double>(sim.makespan) -
                                static_cast<double>(r.schedule.makespan)) /
                       static_cast<double>(sim.makespan);
    // Appendix B reports whiskers within a few percent; allow slack for the
    // transients of tiny graphs.
    EXPECT_LT(err, 0.2) << "analytic " << r.schedule.makespan << " simulated "
                        << sim.makespan;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulatorAgreementSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values<std::int64_t>(4, 16, 64)));

TEST(SimulatorTrace, ObservedFirstOutMatchesAnalyticOnFigure8) {
  const TaskGraph g = testing::figure8_graph();
  const auto r = run_scheduler(g, 5);
  const SimResult sim = simulate_streaming(g, r.schedule, r.buffers);
  // The single-block Figure 8 schedule is exact: FO(0)=1, FO(3)=2, FO(4)=6.
  EXPECT_EQ(sim.first_out[0], r.schedule.at(0).first_out);
  EXPECT_EQ(sim.first_out[3], r.schedule.at(3).first_out);
  EXPECT_EQ(sim.first_out[4], r.schedule.at(4).first_out);
}

TEST(SimulatorTrace, TraceDisabledByDefault) {
  const TaskGraph g = testing::figure8_graph();
  const auto r = run_scheduler(g, 5);
  const SimResult sim = simulate_streaming(g, r.schedule, r.buffers);
  EXPECT_TRUE(sim.trace.empty());
}

TEST(SimulatorTrace, TraceCountsAndOrderingAreConsistent) {
  const TaskGraph g = testing::figure8_graph();
  const auto r = run_scheduler(g, 5);
  SimOptions opts;
  opts.record_trace = true;
  const SimResult sim = simulate_streaming(g, r.schedule, r.buffers, opts);
  ASSERT_FALSE(sim.trace.empty());
  // Tick-monotone trace.
  for (std::size_t i = 1; i < sim.trace.size(); ++i) {
    EXPECT_LE(sim.trace[i - 1].tick, sim.trace[i].tick);
  }
  // Event counts match the volumes: consumes = sum I(v), produces = sum O(v)
  // over PE nodes (no buffers in Figure 8).
  std::int64_t consumes = 0, produces = 0;
  for (const SimEvent& e : sim.trace) {
    if (e.kind == SimEvent::Kind::kConsume) ++consumes; else ++produces;
  }
  std::int64_t expect_c = 0, expect_p = 0;
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    expect_c += g.input_volume(v);
    expect_p += g.output_volume(v);
  }
  EXPECT_EQ(consumes, expect_c);
  EXPECT_EQ(produces, expect_p);
}

}  // namespace
}  // namespace sts
