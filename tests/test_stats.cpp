#include "support/stats.hpp"

#include <gtest/gtest.h>

#include "support/prng.hpp"
#include "support/table.hpp"

namespace sts {
namespace {

TEST(BoxStats, EmptyInput) {
  const BoxStats s = box_stats({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.median, 0.0);
}

TEST(BoxStats, SingleSample) {
  const BoxStats s = box_stats({42.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.q1, 42.0);
  EXPECT_DOUBLE_EQ(s.q3, 42.0);
}

TEST(BoxStats, QuartilesType7) {
  // numpy.percentile defaults (linear interpolation) on 1..5.
  const BoxStats s = box_stats({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(BoxStats, InterpolatedQuartiles) {
  const BoxStats s = box_stats({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.q1, 1.75);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.q3, 3.25);
}

TEST(BoxStats, OutlierDetection) {
  // 100 is far beyond Q3 + 1.5 IQR of the rest.
  const BoxStats s = box_stats({1, 2, 3, 4, 5, 100});
  ASSERT_EQ(s.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(s.outliers.front(), 100.0);
  EXPECT_DOUBLE_EQ(s.whisker_hi, 5.0);
  EXPECT_DOUBLE_EQ(s.whisker_lo, 1.0);
}

TEST(BoxStats, UnsortedInputHandled) {
  const BoxStats s = box_stats({5, 1, 4, 2, 3});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Stats, QuantileAndMedianHelpers) {
  EXPECT_DOUBLE_EQ(median_of({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(quantile_of({0, 10}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_of({0, 10}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_of({0, 10}, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(mean_of({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Prng, DeterministicPerSeed) {
  Prng a(7);
  Prng b(7);
  Prng c(8);
  bool all_equal = true;
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto x = a();
    all_equal = all_equal && (x == b());
    any_diff = any_diff || (x != c());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(Prng, UniformIntStaysInRange) {
  Prng rng(123);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(3, 9);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 9);
  }
}

TEST(Prng, UniformIntCoversRange) {
  Prng rng(99);
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 4000; ++i) ++hits[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  for (const int h : hits) EXPECT_GT(h, 500);  // roughly uniform
}

TEST(Table, RendersAlignedRows) {
  Table t({"a", "column"});
  t.add_row({"1", "x"});
  t.add_row({"22", "yy"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a  | column |"), std::string::npos);
  EXPECT_NE(out.find("| 22 | yy     |"), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 1), "2.0");
}

}  // namespace
}  // namespace sts
