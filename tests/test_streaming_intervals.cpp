#include "core/streaming_intervals.hpp"

#include <gtest/gtest.h>

#include "paper_examples.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

TEST(StreamingIntervals, Figure6UpsamplerThrottlesSource) {
  const TaskGraph g = testing::figure6_graph();
  const StreamContext ctx = streaming_intervals(g);
  EXPECT_EQ(ctx.s_out[0], Rational(4));  // source throttled by the upsampler
  EXPECT_EQ(ctx.s_out[1], Rational(1));
  EXPECT_EQ(ctx.s_in[1], Rational(4));
}

TEST(StreamingIntervals, Figure8Intervals) {
  const TaskGraph g = testing::figure8_graph();
  const StreamContext ctx = streaming_intervals(g);
  // max O in the single WCC is 32 (the upsampler's output).
  EXPECT_EQ(ctx.s_out[0], Rational(2));
  EXPECT_EQ(ctx.s_out[1], Rational(8));
  EXPECT_EQ(ctx.s_out[2], Rational(8));
  EXPECT_EQ(ctx.s_out[3], Rational(1));
  EXPECT_EQ(ctx.s_out[4], Rational(4));
}

TEST(StreamingIntervals, BufferSplitsComponents) {
  const TaskGraph g = testing::buffer_split_example();
  const StreamContext ctx = streaming_intervals(g);
  // WCC0 = {s, e1, d, B.tail}: max volume 16.
  EXPECT_EQ(ctx.s_out[0], Rational(1));
  EXPECT_EQ(ctx.s_out[1], Rational(1));
  EXPECT_EQ(ctx.s_out[2], Rational(4));  // d outputs 4 of max 16
  // WCC1 = {B.head, u1, e2}: max volume 32.
  EXPECT_EQ(ctx.s_out[3], Rational(4));  // buffer head emits 8 of max 32
  EXPECT_EQ(ctx.s_out[4], Rational(1));
  EXPECT_EQ(ctx.s_out[5], Rational(1));
  // The two components are independent.
  EXPECT_NE(ctx.node_wcc[2], ctx.node_wcc[4]);
}

TEST(StreamingIntervals, AllIntervalsAtLeastOne) {
  const TaskGraph g = make_fft(16, /*seed=*/3);
  const StreamContext ctx = streaming_intervals(g);
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    if (g.output_volume(v) > 0) {
      EXPECT_GE(ctx.s_out[static_cast<std::size_t>(v)], Rational(1)) << "node " << v;
    }
  }
}

TEST(StreamingIntervals, Lemma43ProductInvariant) {
  // Lemma 4.3: S_o(v) * O(v) is constant within a WCC.
  const TaskGraph g = make_gaussian_elimination(8, /*seed=*/11);
  const StreamContext ctx = streaming_intervals(g);
  Rational product(0);
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    const auto idx = static_cast<std::size_t>(v);
    if (g.output_volume(v) == 0) continue;
    const Rational p = ctx.s_out[idx] * Rational(g.output_volume(v));
    if (product == Rational(0)) {
      product = p;
    } else {
      EXPECT_EQ(p, product) << "node " << v;
    }
  }
}

TEST(StreamingIntervals, MaxVolumeNodeRunsAtRateOne) {
  // Theorem 4.1 proof: the max-volume node of a WCC has S_o = 1.
  const TaskGraph g = make_cholesky(5, /*seed=*/5);
  const StreamContext ctx = streaming_intervals(g);
  std::int64_t max_vol = 0;
  NodeId max_node = kInvalidNode;
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    if (g.output_volume(v) > max_vol) {
      max_vol = g.output_volume(v);
      max_node = v;
    }
  }
  ASSERT_NE(max_node, kInvalidNode);
  EXPECT_EQ(ctx.s_out[static_cast<std::size_t>(max_node)], Rational(1));
}

TEST(StreamContext, BlockSourceIngestionJoinsComponentMax) {
  // Block 1 contains a single downsampler reading I=64 from memory; without
  // the ingestion stream its interval analysis would claim S_o = 1 even
  // though reading 64 elements takes 64 units.
  TaskGraph g;
  const NodeId src = g.add_source(64, "src");
  const NodeId down = g.add_compute("down");
  g.add_edge(src, down, 64);
  g.declare_output(down, 4);
  const std::vector<std::int32_t> block_of{0, 1};  // src in block 0, down in block 1
  const StreamContext ctx = compute_stream_context(g, block_of, 1);
  EXPECT_EQ(ctx.s_in[1], Rational(1));    // 64 / 64
  EXPECT_EQ(ctx.s_out[1], Rational(16));  // 64 / 4
}

TEST(StreamContext, WholeGraphSourceNotAffectedByIngestionRule) {
  // Graph sources have no input stream: Theorem 4.1 applies verbatim.
  const TaskGraph g = testing::figure9_graph1();
  const StreamContext ctx = streaming_intervals(g);
  EXPECT_EQ(ctx.s_out[0], Rational(1));
  EXPECT_EQ(ctx.s_out[1], Rational(8));
  EXPECT_EQ(ctx.s_out[2], Rational(16));
  EXPECT_EQ(ctx.s_out[3], Rational(1));
  EXPECT_EQ(ctx.s_out[4], Rational(1));
}

TEST(StreamContext, MembersOutsideBlockAreExcluded) {
  const TaskGraph g = testing::figure9_graph1();
  const std::vector<std::int32_t> block_of{0, 0, 1, 1, 1};
  const StreamContext ctx0 = compute_stream_context(g, block_of, 0);
  EXPECT_TRUE(ctx0.in_context(0));
  EXPECT_TRUE(ctx0.in_context(1));
  EXPECT_FALSE(ctx0.in_context(2));
  const StreamContext ctx1 = compute_stream_context(g, block_of, 1);
  EXPECT_FALSE(ctx1.in_context(0));
  EXPECT_TRUE(ctx1.in_context(3));
}

class IntervalPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalPropertySweep, IntervalsArePositiveAndConsistent) {
  const TaskGraph g = make_fft(8, GetParam());
  const StreamContext ctx = streaming_intervals(g);
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    const auto idx = static_cast<std::size_t>(v);
    if (g.kind(v) != NodeKind::kCompute) continue;
    // Equation 2: S_o = S_i / R.
    EXPECT_EQ(ctx.s_out[idx], ctx.s_in[idx] / g.rate(v)) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalPropertySweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(StreamingIntervals, BufferConsumersAreRateIndependent) {
  // Two consumers replaying the same buffer are independent memory streams
  // (per-edge split): a slow sibling must not throttle the fast one.
  TaskGraph g;
  const NodeId x = g.add_source(8, "x");
  const NodeId buf = g.add_buffer("buf");
  const NodeId fast = g.add_compute("fast");   // element-wise, 8 -> 8
  const NodeId slow = g.add_compute("slow");   // upsampler, 8 -> 64
  g.add_edge(x, buf, 8);
  g.add_edge(buf, fast, 8);
  g.add_edge(buf, slow, 8);
  g.declare_output(fast, 8);
  g.declare_output(slow, 64);
  const StreamContext ctx = streaming_intervals(g);
  EXPECT_EQ(ctx.s_out[fast], Rational(1));      // not slowed to 8
  EXPECT_EQ(ctx.s_in[slow], Rational(8));       // the upsampler is throttled
  EXPECT_EQ(ctx.s_out[slow], Rational(1));
  EXPECT_NE(ctx.node_wcc[fast], ctx.node_wcc[slow]);
}

TEST(StreamingIntervals, SinkAbsorbsAtPredecessorRate) {
  TaskGraph g;
  const NodeId s = g.add_source(4, "s");
  const NodeId up = g.add_compute("up");  // 4 -> 16
  const NodeId sink = g.add_sink("t");
  g.add_edge(s, up, 4);
  g.add_edge(up, sink, 16);
  const StreamContext ctx = streaming_intervals(g);
  EXPECT_EQ(ctx.s_in[sink], Rational(1));  // max volume 16 / I 16
  EXPECT_EQ(ctx.s_out[sink], Rational(0)); // sinks emit nothing
}

TEST(StreamingIntervals, DisconnectedComponentsIndependent) {
  TaskGraph g;
  const NodeId a = g.add_source(4, "a");
  const NodeId a1 = g.add_compute("a1");
  g.add_edge(a, a1, 4);
  g.declare_output(a1, 4);
  const NodeId b = g.add_source(128, "b");
  const NodeId b1 = g.add_compute("b1");
  g.add_edge(b, b1, 128);
  g.declare_output(b1, 128);
  const StreamContext ctx = streaming_intervals(g);
  EXPECT_EQ(ctx.s_out[a], Rational(1));  // the big component does not throttle it
  EXPECT_EQ(ctx.s_out[b], Rational(1));
  EXPECT_NE(ctx.node_wcc[a], ctx.node_wcc[b]);
}

}  // namespace
}  // namespace sts
