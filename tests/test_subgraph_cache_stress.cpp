// Deterministic lock-contention stress for the two mutex-guarded caches every
// concurrent service worker shares: the SubgraphCache fragment store and the
// PartitionCanonMemo canonicalization memo. A latch releases all threads at
// once onto a small keyspace with a capacity chosen to force constant
// eviction, so insert/lookup/evict genuinely interleave; afterwards the stats
// must balance exactly and every returned entry must carry the content of its
// own key (an entry crossed between keys would be a real bug, not noise).
// These suites run under TSan in CI (the SubgraphCache|PartitionCanonMemo
// regex), where the annotated sts::Mutex shim is exercised end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include "graph/serialization.hpp"
#include "pipeline/schedule_cache.hpp"
#include "pipeline/subgraph_cache.hpp"

namespace sts {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 400;
constexpr int kKeys = 32;
constexpr std::size_t kEntryWeight = 8;
// Holds kCapacity / kEntryWeight = 8 of the 32 keys: every thread keeps
// evicting the others' entries, so the LRU head/tail and the buckets churn
// under contention for the whole run.
constexpr std::size_t kCapacity = 64;

/// Deterministic per-thread key sequence (SplitMix-style mix of a counter
/// seeded by the thread index — no std::random devices, identical on every
/// run and platform).
int key_for(int thread, int step) {
  std::uint64_t x = static_cast<std::uint64_t>(thread) * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(step) + 1;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return static_cast<int>(x % kKeys);
}

TEST(SubgraphCacheStress, ConcurrentInsertLookupEvictKeepsBooks) {
  SubgraphCache cache(kCapacity);
  std::latch start(kThreads);
  std::atomic<std::uint64_t> finds{0};
  std::atomic<std::uint64_t> wrong_content{0};
  std::atomic<std::uint64_t> assemblies{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key = key_for(t, i);
        const std::string context = "scheduler streaming-rlx pes 8";
        const std::string form = "canonical form of partition " + std::to_string(key);
        const std::uint64_t hash = fnv1a64(context + form);
        std::shared_ptr<const ScheduleResult> fragment =
            cache.find(hash, context, form, /*delta=*/false);
        finds.fetch_add(1, std::memory_order_relaxed);
        if (!fragment) {
          ScheduleResult computed;
          computed.scheduler = "stress";
          computed.makespan = key;  // the content check below keys on this
          fragment = cache.insert(hash, context, form, std::move(computed), kEntryWeight);
        }
        if (fragment->makespan != key) wrong_content.fetch_add(1, std::memory_order_relaxed);
        if (i % 64 == 0) {
          cache.note_assembled(2);
          assemblies.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // No entry ever crossed keys, and the books balance exactly: every find
  // was either a hit or a miss, nothing was double counted under contention.
  EXPECT_EQ(wrong_content.load(), 0u);
  const SubgraphCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.partition_hits + stats.partition_misses, finds.load());
  EXPECT_GT(stats.partition_hits, 0u);
  EXPECT_GT(stats.partition_misses, 0u);
  EXPECT_EQ(stats.delta_invalidated, 0u);  // no delta requests in this run
  EXPECT_EQ(stats.fragments_assembled, 2 * assemblies.load());

  // Eviction really ran (32 keys cannot fit in 8 slots) yet the weight bound
  // held; uniform weights mean the resident weight is exactly size() slots.
  EXPECT_LE(cache.total_weight(), kCapacity);
  EXPECT_EQ(cache.total_weight(), cache.size() * kEntryWeight);
  EXPECT_LE(cache.size(), kCapacity / kEntryWeight);
  EXPECT_GT(stats.partition_misses, static_cast<std::uint64_t>(kKeys));
}

TEST(SubgraphCacheStress, DeltaFlagAttributesMissesUnderContention) {
  SubgraphCache cache(kCapacity);
  std::latch start(kThreads);
  std::atomic<std::uint64_t> finds{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key = key_for(t, i);
        const std::string context = "ctx";
        const std::string form = "form " + std::to_string(key);
        const std::uint64_t hash = fnv1a64(context + form);
        auto fragment = cache.find(hash, context, form, /*delta=*/true);
        finds.fetch_add(1, std::memory_order_relaxed);
        if (!fragment) {
          ScheduleResult computed;
          computed.makespan = key;
          (void)cache.insert(hash, context, form, std::move(computed), kEntryWeight);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every miss happened while serving a delta request, so the attribution
  // counter must equal the miss count exactly — even under eviction churn.
  const SubgraphCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.partition_hits + stats.partition_misses, finds.load());
  EXPECT_EQ(stats.delta_invalidated, stats.partition_misses);
}

TEST(PartitionCanonMemoStress, ConcurrentFindInsertEvictKeepsBooks) {
  PartitionCanonMemo memo(kCapacity);
  std::latch start(kThreads);
  std::atomic<std::uint64_t> finds{0};
  std::atomic<std::uint64_t> wrong_content{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key = key_for(t, i);
        const std::string raw = "raw partition content " + std::to_string(key);
        std::shared_ptr<const PartitionCanonMemo::Ranks> ranks = memo.find(raw);
        finds.fetch_add(1, std::memory_order_relaxed);
        if (!ranks) {
          PartitionCanonMemo::Ranks computed;
          // kEntryWeight nodes; rank[0] carries the key for the content check.
          computed.hash.assign(kEntryWeight, static_cast<std::uint64_t>(key));
          computed.rank.assign(kEntryWeight, 0);
          computed.rank[0] = key;
          computed.form = "form " + std::to_string(key);
          computed.form_digest = static_cast<std::uint64_t>(key);
          ranks = memo.insert(raw, std::move(computed));
        }
        if (ranks->rank.size() != kEntryWeight || ranks->rank[0] != key ||
            ranks->form_digest != static_cast<std::uint64_t>(key)) {
          wrong_content.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(wrong_content.load(), 0u);
  const PartitionCanonMemo::Stats stats = memo.stats();
  EXPECT_EQ(stats.hits + stats.misses, finds.load());
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, static_cast<std::uint64_t>(kKeys));  // eviction re-misses
  EXPECT_LE(memo.total_weight(), kCapacity);
  EXPECT_EQ(memo.total_weight(), memo.size() * kEntryWeight);
  EXPECT_LE(memo.size(), kCapacity / kEntryWeight);
}

}  // namespace
}  // namespace sts
