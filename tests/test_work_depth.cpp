#include "core/work_depth.hpp"

#include <gtest/gtest.h>

#include "paper_examples.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

TEST(WorkDepth, ElementwiseChain) {
  // Section 4.2.1: T1 = N*k; T_s_inf bound = L(G) + k.
  TaskGraph g;
  const std::int64_t k = 32;
  NodeId prev = g.add_source(k, "s");
  for (int i = 1; i < 5; ++i) {
    const NodeId next = g.add_compute("c" + std::to_string(i));
    g.add_edge(prev, next, k);
    prev = next;
  }
  g.declare_output(prev, k);
  const WorkDepth wd = analyze_work_depth(g);
  EXPECT_EQ(wd.work, 5 * k);
  EXPECT_EQ(wd.levels, Rational(5));
  EXPECT_EQ(wd.streaming_depth, Rational(5 + k));
}

TEST(WorkDepth, DownsamplerGraphUsesMaxWork) {
  // Section 4.2.2: sources dominate; bound = max W(v) + L(G).
  TaskGraph g;
  const NodeId s = g.add_source(64, "s");
  const NodeId d1 = g.add_compute("d1");
  const NodeId d2 = g.add_compute("d2");
  g.add_edge(s, d1, 64);
  g.add_edge(d1, d2, 16);
  g.declare_output(d2, 4);
  const WorkDepth wd = analyze_work_depth(g);
  EXPECT_EQ(wd.work, 64 + 64 + 16);
  EXPECT_EQ(wd.levels, Rational(3));
  EXPECT_EQ(wd.streaming_depth, Rational(64 + 3));
}

TEST(WorkDepth, UpsamplerRaisesLevelsAndVolume) {
  const TaskGraph g = testing::figure6_graph();
  const WorkDepth wd = analyze_work_depth(g);
  // L(source)=1, L(v)=1+R=5; max volume 32.
  EXPECT_EQ(wd.levels, Rational(5));
  EXPECT_EQ(wd.streaming_depth, Rational(32 + 5));
}

TEST(WorkDepth, BufferedGraphSumsComponentDepths) {
  const TaskGraph g = testing::buffer_split_example();
  const WorkDepth wd = analyze_work_depth(g);
  // WCC0 {s,e1,d}: levels 3, max volume 16 -> 19.
  // WCC1 {B.head,u1,e2}: head level 1, u1 = 1+4 = 5, e2 = 6; max 32 -> 38.
  EXPECT_EQ(wd.streaming_depth, Rational(19 + 38));
}

TEST(WorkDepth, WorkMatchesGraphTotal) {
  const TaskGraph g = make_cholesky(5, /*seed=*/1);
  EXPECT_EQ(analyze_work_depth(g).work, g.total_work());
}

TEST(WorkDepth, DepthLowerBoundsAnyMakespan) {
  // The streaming-depth bound is an infinite-PE quantity: with limited PEs,
  // any schedule's makespan is at least in its vicinity. We check it is
  // positive and no greater than the sequential work for nontrivial graphs.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const TaskGraph g = make_fft(8, seed);
    const WorkDepth wd = analyze_work_depth(g);
    EXPECT_GT(wd.streaming_depth, Rational(0));
    EXPECT_LE(wd.streaming_depth, Rational(wd.work));
  }
}

TEST(WorkDepth, ParallelComponentsTakeDeepest) {
  // Two independent chains (no buffers): H has two unconnected supernodes;
  // the depth is the deeper one, not the sum.
  TaskGraph g;
  const NodeId a = g.add_source(16, "a");
  const NodeId a1 = g.add_compute("a1");
  g.add_edge(a, a1, 16);
  g.declare_output(a1, 16);
  const NodeId b = g.add_source(64, "b");
  const NodeId b1 = g.add_compute("b1");
  g.add_edge(b, b1, 64);
  g.declare_output(b1, 64);
  const WorkDepth wd = analyze_work_depth(g);
  EXPECT_EQ(wd.streaming_depth, Rational(64 + 2));
}

}  // namespace
}  // namespace sts
