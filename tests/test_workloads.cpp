#include "workloads/synthetic.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <stdexcept>

namespace sts {
namespace {

TEST(Workloads, TaskCountFormulasMatchPaper) {
  // Section 7.1 quotes exactly these sizes for the evaluated graphs.
  EXPECT_EQ(chain_task_count(8), 8);
  EXPECT_EQ(fft_task_count(32), 223);
  EXPECT_EQ(gaussian_task_count(16), 135);
  EXPECT_EQ(cholesky_task_count(8), 120);
}

TEST(Workloads, FftTaskCountValidatesLikeMakeFft) {
  // The formula (and the old shift-based log2) is only defined for powers of
  // two; anything else must throw instead of silently miscounting or hitting
  // shift UB.
  EXPECT_THROW((void)fft_task_count(0), std::invalid_argument);
  EXPECT_THROW((void)fft_task_count(-8), std::invalid_argument);
  EXPECT_THROW((void)fft_task_count(1), std::invalid_argument);
  EXPECT_THROW((void)fft_task_count(24), std::invalid_argument);
  EXPECT_THROW((void)fft_task_count(std::numeric_limits<int>::max()), std::invalid_argument);
  // Huge powers of two stay defined (the old `1 << bits` overflowed int).
  EXPECT_EQ(fft_task_count(1 << 20), 2 * (1LL << 20) - 1 + 20 * (1LL << 20));
  EXPECT_EQ(fft_task_count(1 << 30), 2 * (1LL << 30) - 1 + 30 * (1LL << 30));
}

TEST(Workloads, MakeFftRejectsOverflowingPointCounts) {
  EXPECT_THROW((void)make_fft(0, 1), std::invalid_argument);
  EXPECT_THROW((void)make_fft(24, 1), std::invalid_argument);
  // Valid power of two, but the node-id space (int32) would overflow.
  EXPECT_THROW((void)make_fft(1 << 21, 1), std::invalid_argument);
}

TEST(Workloads, GeneratorsMatchFormulas) {
  EXPECT_EQ(make_chain(8, 1).node_count(), 8u);
  EXPECT_EQ(make_fft(32, 1).node_count(), 223u);
  EXPECT_EQ(make_gaussian_elimination(16, 1).node_count(), 135u);
  EXPECT_EQ(make_cholesky(8, 1).node_count(), 120u);
}

TEST(Workloads, AllGraphsValidateAsCanonical) {
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    EXPECT_TRUE(make_chain(8, seed).validate().empty()) << seed;
    EXPECT_TRUE(make_fft(16, seed).validate().empty()) << seed;
    EXPECT_TRUE(make_gaussian_elimination(8, seed).validate().empty()) << seed;
    EXPECT_TRUE(make_cholesky(6, seed).validate().empty()) << seed;
  }
}

TEST(Workloads, DeterministicPerSeed) {
  const TaskGraph a = make_fft(16, 5);
  const TaskGraph b = make_fft(16, 5);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (NodeId v = 0; static_cast<std::size_t>(v) < a.node_count(); ++v) {
    EXPECT_EQ(a.output_volume(v), b.output_volume(v));
  }
  const TaskGraph c = make_fft(16, 6);
  bool any_diff = false;
  for (NodeId v = 0; static_cast<std::size_t>(v) < a.node_count(); ++v) {
    any_diff = any_diff || (a.output_volume(v) != c.output_volume(v));
  }
  EXPECT_TRUE(any_diff);
}

TEST(Workloads, SeedsProduceNodeTypeVariety) {
  // "each task graph will have different data volumes and types of canonical
  // nodes" (Section 7.1).
  const TaskGraph g = make_gaussian_elimination(8, 3);
  int up = 0, down = 0, elwise = 0;
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    if (g.kind(v) != NodeKind::kCompute) continue;
    if (g.is_upsampler(v)) ++up;
    if (g.is_downsampler(v)) ++down;
    if (g.is_elementwise(v)) ++elwise;
  }
  EXPECT_GT(up + down + elwise, 0);
  EXPECT_GT(up, 0);
  EXPECT_GT(down, 0);
}

TEST(Workloads, ChainIsALine) {
  const TaskGraph g = make_chain(5, 2);
  EXPECT_EQ(g.edge_count(), 4u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_LE(g.out_degree(v), 1u);
    EXPECT_LE(g.in_degree(v), 1u);
  }
  EXPECT_EQ(g.kind(0), NodeKind::kSource);
}

TEST(Workloads, FftStructure) {
  const int points = 8;
  const TaskGraph g = make_fft(points, 1);
  // 2N-1 tree nodes + N log N butterflies.
  EXPECT_EQ(g.node_count(), 15u + 24u);
  // Butterflies have exactly two predecessors.
  for (NodeId v = 15; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    EXPECT_EQ(g.in_degree(v), 2u) << "butterfly " << v;
  }
  // Exactly one source: the tree root.
  int sources = 0;
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    if (g.in_degree(v) == 0) ++sources;
  }
  EXPECT_EQ(sources, 1);
}

TEST(Workloads, GaussianStructure) {
  const TaskGraph g = make_gaussian_elimination(5, 1);
  EXPECT_EQ(g.node_count(), static_cast<std::size_t>(gaussian_task_count(5)));
  int sources = 0;
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    if (g.in_degree(v) == 0) ++sources;
  }
  EXPECT_EQ(sources, 1);  // the first pivot
}

TEST(Workloads, CholeskyStructure) {
  const TaskGraph g = make_cholesky(5, 1);
  EXPECT_EQ(g.node_count(), static_cast<std::size_t>(cholesky_task_count(5)));
  // POTRF(0) is the only entry.
  int sources = 0;
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    if (g.in_degree(v) == 0) ++sources;
  }
  EXPECT_EQ(sources, 1);
}

TEST(Workloads, CoPredecessorClassesShareVolumes) {
  // Canonicity mechanics: all predecessors of any node emit equal volumes.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const TaskGraph g = make_fft(16, seed);
    for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
      const auto ins = g.in_edges(v);
      for (const EdgeId e : ins) {
        EXPECT_EQ(g.edge(e).volume, g.edge(ins.front()).volume) << "node " << v;
      }
    }
  }
}

TEST(Workloads, VolumeDistributionRespected) {
  VolumeDistribution dist;
  dist.min_log2 = 2;
  dist.max_log2 = 4;
  const TaskGraph g = make_chain(20, 9, dist);
  for (NodeId v = 0; v < 20; ++v) {
    const auto vol = g.output_volume(v);
    EXPECT_GE(vol, 4);
    EXPECT_LE(vol, 16);
    EXPECT_EQ(vol & (vol - 1), 0) << "power of two";
  }
}

TEST(Workloads, InputGuards) {
  EXPECT_THROW(make_chain(0, 1), std::invalid_argument);
  EXPECT_THROW(make_fft(12, 1), std::invalid_argument);
  EXPECT_THROW(make_gaussian_elimination(1, 1), std::invalid_argument);
  EXPECT_THROW(make_cholesky(1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace sts
