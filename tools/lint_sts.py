#!/usr/bin/env python3
"""Project-specific invariants that neither the compiler nor clang-tidy check.

Run from anywhere: `python3 tools/lint_sts.py`. Exits non-zero listing every
violation. Enforced rules:

 1. `intra_threads` is a pure execution knob: it must never appear inside a
    cache-key code path (any function named `key`, `cache_key`, or
    `canonical_cache_key`) — results are bit-identical at every lane count,
    so letting it into a key would silently split the cache.

 2. Every counter declared in a `struct Stats` must be rendered by a
    stats_json() implementation AND documented in the README stats table:
    a counter that is maintained but never surfaced is dead weight, and one
    missing from the README is invisible to operators.

 3. `sim/sim_internal.hpp` is private to src/sim/ — the simulator's internal
    event structures are not a public seam.

 4. Every bench/bench_*.cpp emits its BENCH_<name>.json report (CI archives
    these; perf gates read them), via BenchReport("<name>") or a literal
    "BENCH_<name>.json" write.

 5. The stats wire format round-trips: every cumulative counter key that
    ScheduleService::render_stats_json() emits must be parsed back by
    service_stats_from_json() (RemoteBackend scrapes /stats through it, and a
    key the parser ignores silently zeroes that counter in every router
    aggregate), and the parser must not read keys the renderer never writes.
    Gauges (workers, cache_weight, ...) are point-in-time values read through
    other paths and are allowlisted.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
BENCH = REPO / "bench"
README = REPO / "README.md"

KEY_FUNC_NAMES = ("key", "cache_key", "canonical_cache_key")


def fail(errors: list[str], message: str) -> None:
    errors.append(message)


def strip_comments(text: str) -> str:
    """Removes // and /* */ comments (string literals are left alone: good
    enough for these rules, where the tokens we scan for never appear inside
    project string literals in a misleading way)."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def function_bodies(text: str, names: tuple[str, ...]):
    """Yields (name, body) for every definition of a function whose unqualified
    name is in `names`, by brace tracking from the definition's opening brace."""
    pattern = re.compile(
        r"\b(?:[\w~]+\s*::\s*)*(" + "|".join(names) + r")\s*\(([^;{)]*)\)\s*"
        r"(?:const\s*)?(?:noexcept\s*)?(?:->\s*[\w:<>&\s]+)?\{"
    )
    for match in pattern.finditer(text):
        start = match.end() - 1  # the '{'
        depth = 0
        for i in range(start, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    yield match.group(1), text[start : i + 1]
                    break


def check_intra_threads_out_of_keys(errors: list[str]) -> None:
    for path in sorted(SRC.rglob("*.[ch]pp")):
        text = strip_comments(path.read_text())
        for name, body in function_bodies(text, KEY_FUNC_NAMES):
            if "intra_threads" in body:
                fail(
                    errors,
                    f"{path.relative_to(REPO)}: {name}() mentions intra_threads — "
                    "execution knobs must never reach cache-key code paths",
                )


def stats_counters() -> list[tuple[Path, str]]:
    counters = []
    for path in sorted(SRC.rglob("*.hpp")):
        text = strip_comments(path.read_text())
        for match in re.finditer(r"struct\s+Stats\s*\{", text):
            start = match.end() - 1
            depth = 0
            for i in range(start, len(text)):
                if text[i] == "{":
                    depth += 1
                elif text[i] == "}":
                    depth -= 1
                    if depth == 0:
                        body = text[start : i + 1]
                        for field in re.finditer(r"std::uint64_t\s+(\w+)\s*=", body):
                            counters.append((path, field.group(1)))
                        break
    return counters


def check_stats_surfaced(errors: list[str]) -> None:
    renderers = ""
    for path in sorted(SRC.rglob("*.cpp")):
        text = path.read_text()
        if "stats_json" in text:
            renderers += text
    rendered_keys = set(re.findall(r'"([\w]+)"', renderers))
    readme_table_rows = [
        line for line in README.read_text().splitlines() if line.lstrip().startswith("|")
    ]
    for path, counter in stats_counters():
        if not any(counter in key for key in rendered_keys):
            fail(
                errors,
                f"{path.relative_to(REPO)}: Stats counter `{counter}` is never "
                "rendered by any stats_json()",
            )
        if not any(counter in row for row in readme_table_rows):
            fail(
                errors,
                f"{path.relative_to(REPO)}: Stats counter `{counter}` is missing "
                "from the README stats table",
            )


def check_sim_internal_private(errors: list[str]) -> None:
    for path in sorted(SRC.rglob("*.[ch]pp")):
        if path.is_relative_to(SRC / "sim"):
            continue
        for i, line in enumerate(path.read_text().splitlines(), 1):
            if re.search(r'#\s*include\s*"sim/sim_internal\.hpp"', line):
                fail(
                    errors,
                    f"{path.relative_to(REPO)}:{i}: sim/sim_internal.hpp is "
                    "private to src/sim/",
                )
    for path in sorted((REPO / "tests").glob("*.cpp")) + sorted(BENCH.glob("*.cpp")):
        for i, line in enumerate(path.read_text().splitlines(), 1):
            if re.search(r'#\s*include\s*"sim/sim_internal\.hpp"', line):
                fail(
                    errors,
                    f"{path.relative_to(REPO)}:{i}: sim/sim_internal.hpp is "
                    "private to src/sim/",
                )


def check_bench_reports(errors: list[str]) -> None:
    for path in sorted(BENCH.glob("bench_*.cpp")):
        name = path.stem[len("bench_") :]
        text = path.read_text()
        emits = (
            f'BenchReport report("{name}")' in text
            or f'BenchReport("{name}")' in text
            or f'"BENCH_{name}.json"' in text
        )
        if not emits:
            fail(
                errors,
                f"{path.relative_to(REPO)}: does not emit BENCH_{name}.json "
                f'(construct sts::bench::BenchReport("{name}") and write() it)',
            )


# Point-in-time gauges in the /stats document: not cumulative ServiceStats
# counters, so service_stats_from_json() intentionally skips them (workers and
# cache_weight are read through dedicated paths by RemoteBackend).
STATS_GAUGE_KEYS = {
    "schema_version",
    "uptime_seconds",
    "workers",
    "queue_depth_limit",
    "max_queue_depth",
    "cache_size",
    "cache_weight",
    "cache_capacity",
}


def check_stats_wire_round_trip(errors: list[str]) -> None:
    renderer_path = SRC / "service" / "schedule_service.cpp"
    parser_path = SRC / "service" / "backend.cpp"
    rendered: set[str] = set()
    for name, body in function_bodies(renderer_path.read_text(), ("render_stats_json",)):
        rendered.update(re.findall(r'field\("(\w+)"', body))
        rendered.update(re.findall(r'\\"(\w+)\\"', body))
    parsed: set[str] = set()
    for name, body in function_bodies(parser_path.read_text(), ("service_stats_from_json",)):
        parsed.update(re.findall(r'counter\("(\w+)"\)', body))
        parsed.update(re.findall(r'find\("(\w+)"\)', body))
    if not rendered:
        fail(errors, f"{renderer_path.relative_to(REPO)}: render_stats_json() not found")
        return
    if not parsed:
        fail(errors, f"{parser_path.relative_to(REPO)}: service_stats_from_json() not found")
        return
    for key in sorted(rendered - parsed - STATS_GAUGE_KEYS):
        fail(
            errors,
            f"{renderer_path.relative_to(REPO)}: stats key `{key}` is rendered but "
            "never parsed by service_stats_from_json() — remote scrapes drop it "
            "(parse it, or allowlist it in STATS_GAUGE_KEYS if it is a gauge)",
        )
    for key in sorted(parsed - rendered):
        fail(
            errors,
            f"{parser_path.relative_to(REPO)}: service_stats_from_json() reads "
            f"`{key}`, which render_stats_json() never writes",
        )


def main() -> int:
    errors: list[str] = []
    check_intra_threads_out_of_keys(errors)
    check_stats_surfaced(errors)
    check_sim_internal_private(errors)
    check_bench_reports(errors)
    check_stats_wire_round_trip(errors)
    if errors:
        print(f"lint_sts: {len(errors)} violation(s)", file=sys.stderr)
        for message in errors:
            print(f"  {message}", file=sys.stderr)
        return 1
    print("lint_sts: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
